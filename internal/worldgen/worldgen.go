// Package worldgen procedurally generates the benchmark environments: the
// equivalent of the paper's 10 AirSim/Unreal maps spanning rural, suburban
// and urban areas (§IV-B), with 10 scenarios per map split evenly between
// normal and adverse weather.
//
// Generation is fully deterministic in (map index, scenario index, run
// seed), so every system generation is evaluated on byte-identical worlds.
package worldgen

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/geom"
	"repro/internal/sim"
	"repro/internal/vision"
)

// Class is the terrain category of a map.
type Class int

// Map classes, mirroring the paper's environment mix.
const (
	Rural Class = iota
	Suburban
	Urban
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case Rural:
		return "rural"
	case Suburban:
		return "suburban"
	case Urban:
		return "urban"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// MapSpec names one of the ten standard maps.
type MapSpec struct {
	Index int
	Class Class
	Name  string
}

// Maps returns the ten standard benchmark maps: four rural, three
// suburban, three urban.
func Maps() []MapSpec {
	return []MapSpec{
		{0, Rural, "rural-meadow"},
		{1, Rural, "rural-woodline"},
		{2, Rural, "rural-orchard"},
		{3, Rural, "rural-lakeside"},
		{4, Suburban, "suburb-lowdense"},
		{5, Suburban, "suburb-parkside"},
		{6, Suburban, "suburb-mainstreet"},
		{7, Urban, "urban-blocks"},
		{8, Urban, "urban-campus"},
		{9, Urban, "urban-towers"},
	}
}

// Scenario is a fully instantiated test case: the world, its weather, and
// the mission parameters handed to the landing system.
type Scenario struct {
	Map     MapSpec
	Index   int // scenario number within the map, 0..9
	World   *sim.World
	Weather sim.Weather
	// GPSGoal is the initial GPS estimate of the landing site given to
	// the system (deliberately offset from the true marker).
	GPSGoal geom.Vec3
	// TargetID is the dictionary ID of the true landing marker.
	TargetID int
	// TrueMarker is the ground-truth marker center (scoring only).
	TrueMarker geom.Vec3
}

// NumScenariosPerMap is the paper's per-map scenario count.
const NumScenariosPerMap = 10

// Generate builds scenario (mapIndex, scIndex) deterministically. baseSeed
// lets repeated runs (the ×3 repetitions of RQ1) perturb sensor seeds while
// keeping the same world: world geometry depends only on map and scenario.
func Generate(mapIndex, scIndex int) (*Scenario, error) {
	maps := Maps()
	if mapIndex < 0 || mapIndex >= len(maps) {
		return nil, fmt.Errorf("worldgen: map index %d out of range [0,%d)", mapIndex, len(maps))
	}
	if scIndex < 0 || scIndex >= NumScenariosPerMap {
		return nil, fmt.Errorf("worldgen: scenario index %d out of range [0,%d)", scIndex, NumScenariosPerMap)
	}
	spec := maps[mapIndex]
	seed := int64(mapIndex)*1_000_003 + int64(scIndex)*7_919 + 20250521
	rng := rand.New(rand.NewSource(seed))

	w := &sim.World{
		Bounds:         geom.NewAABB(geom.V3(-90, -90, 0), geom.V3(90, 90, 45)),
		GroundSeed:     seed,
		GroundBase:     0.42 + 0.08*rng.Float64(),
		GroundContrast: 0.2 + 0.12*rng.Float64(),
	}

	switch spec.Class {
	case Rural:
		genRural(w, rng, spec.Index)
	case Suburban:
		genSuburban(w, rng)
	case Urban:
		genUrban(w, rng)
	}

	// Keep an 8m bubble around the origin clear for takeoff.
	clearBubble(w, geom.V3(0, 0, 0), 8)

	sc := &Scenario{Map: spec, Index: scIndex, World: w}

	// Mission: the GPS goal sits 45–75m out in a random direction; the
	// true marker lies within 8m of it on free ground.
	if err := placeMission(sc, rng); err != nil {
		return nil, err
	}

	sc.Weather = genWeather(rng, scIndex)

	// The obstacle lists are final: build the static spatial index that
	// accelerates every collision, lidar, depth and occlusion query. From
	// here on the world is immutable (the cache relies on that).
	w.BuildIndex()
	return sc, nil
}

// genRural places tree clusters, a woodline crossing the middle of the
// map, and ponds.
func genRural(w *sim.World, rng *rand.Rand, mapIdx int) {
	// Woodlines: bands of tall trees crossing the map at random angles.
	// Mature trees reach 10-17m, well above the 12m search altitude, so
	// a blind straight-line transit usually clips one.
	nLines := 2
	for line := 0; line < nLines; line++ {
		angle := rng.Float64() * math.Pi
		cx := (rng.Float64() - 0.5) * 60
		cy := (rng.Float64() - 0.5) * 60
		dir := geom.V2(math.Cos(angle), math.Sin(angle))
		normal := geom.V2(-dir.Y, dir.X)
		for s := -85.0; s <= 85; s += 2.6 {
			if rng.Float64() < 0.10 {
				continue // gaps in the woodline
			}
			jitter := (rng.Float64() - 0.5) * 5
			px := cx + dir.X*s + normal.X*jitter
			py := cy + dir.Y*s + normal.Y*jitter
			h := 10 + rng.Float64()*7
			w.Trees = append(w.Trees, geom.Cylinder{
				Center: geom.V2(px, py),
				Radius: 2.2 + rng.Float64()*1.8,
				TopZ:   h,
			})
		}
	}
	// Scattered clusters.
	nClusters := 3 + rng.Intn(3)
	for c := 0; c < nClusters; c++ {
		ccx := (rng.Float64() - 0.5) * 150
		ccy := (rng.Float64() - 0.5) * 150
		n := 4 + rng.Intn(8)
		for i := 0; i < n; i++ {
			w.Trees = append(w.Trees, geom.Cylinder{
				Center: geom.V2(ccx+(rng.Float64()-0.5)*16, ccy+(rng.Float64()-0.5)*16),
				Radius: 1.5 + rng.Float64()*1.5,
				TopZ:   7 + rng.Float64()*9,
			})
		}
	}
	// Ponds (lakeside map gets a big one).
	nPonds := 1 + rng.Intn(2)
	if mapIdx == 3 {
		nPonds = 3
	}
	for p := 0; p < nPonds; p++ {
		px := (rng.Float64() - 0.5) * 130
		py := (rng.Float64() - 0.5) * 130
		sx := 8 + rng.Float64()*18
		sy := 8 + rng.Float64()*18
		w.Water = append(w.Water, geom.NewAABB(
			geom.V3(px-sx/2, py-sy/2, 0), geom.V3(px+sx/2, py+sy/2, 0.3)))
	}
	// A barn or two.
	for b := 0; b < 1+rng.Intn(2); b++ {
		bx := (rng.Float64() - 0.5) * 120
		by := (rng.Float64() - 0.5) * 120
		w.Buildings = append(w.Buildings, geom.NewAABB(
			geom.V3(bx, by, 0), geom.V3(bx+8+rng.Float64()*6, by+6+rng.Float64()*6, 5+rng.Float64()*4)))
	}
}

// genSuburban places a loose street grid of houses with garden trees and
// the occasional taller apartment block.
func genSuburban(w *sim.World, rng *rand.Rand) {
	pitch := 22.0
	for gx := -3; gx <= 3; gx++ {
		for gy := -3; gy <= 3; gy++ {
			if rng.Float64() < 0.25 {
				continue // empty lot
			}
			bx := float64(gx)*pitch + (rng.Float64()-0.5)*6
			by := float64(gy)*pitch + (rng.Float64()-0.5)*6
			fw := 6 + rng.Float64()*5
			fd := 6 + rng.Float64()*5
			h := 5 + rng.Float64()*4 // houses 5–9m
			if rng.Float64() < 0.22 {
				h = 13 + rng.Float64()*7 // apartment block 13-20m
				fw += 5
				fd += 5
			}
			w.Buildings = append(w.Buildings, geom.NewAABB(
				geom.V3(bx-fw/2, by-fd/2, 0), geom.V3(bx+fw/2, by+fd/2, h)))
			// Garden trees.
			for tti := 0; tti < rng.Intn(3); tti++ {
				tx := bx + (rng.Float64()-0.5)*pitch*0.9
				ty := by + (rng.Float64()-0.5)*pitch*0.9
				w.Trees = append(w.Trees, geom.Cylinder{
					Center: geom.V2(tx, ty),
					Radius: 1.5 + rng.Float64()*1.6,
					TopZ:   8 + rng.Float64()*9, // up to 17m street trees
				})
			}
		}
	}
}

// genUrban places dense city blocks, including wide slabs that defeat a
// bounded A* pool, with sparse street trees.
func genUrban(w *sim.World, rng *rand.Rand) {
	pitch := 34.0
	for gx := -2; gx <= 2; gx++ {
		for gy := -2; gy <= 2; gy++ {
			if rng.Float64() < 0.15 {
				continue // plaza
			}
			bx := float64(gx)*pitch + (rng.Float64()-0.5)*6
			by := float64(gy)*pitch + (rng.Float64()-0.5)*6
			fw := 12 + rng.Float64()*14
			fd := 12 + rng.Float64()*14
			h := 14 + rng.Float64()*18 // 14–32m towers
			if rng.Float64() < 0.25 {
				// Wide slab building: the Fig. 5a pool-killer.
				fw = 28 + rng.Float64()*14
				fd = 10 + rng.Float64()*8
			}
			w.Buildings = append(w.Buildings, geom.NewAABB(
				geom.V3(bx-fw/2, by-fd/2, 0), geom.V3(bx+fw/2, by+fd/2, h)))
		}
	}
	// Street trees.
	for i := 0; i < 18; i++ {
		w.Trees = append(w.Trees, geom.Cylinder{
			Center: geom.V2((rng.Float64()-0.5)*160, (rng.Float64()-0.5)*160),
			Radius: 1.2 + rng.Float64()*1.2,
			TopZ:   6 + rng.Float64()*6,
		})
	}
}

// clearBubble removes obstacles overlapping a sphere around p (the takeoff
// pad and the landing site must be physically reachable).
func clearBubble(w *sim.World, p geom.Vec3, r float64) {
	bs := w.Buildings[:0]
	for _, b := range w.Buildings {
		if b.Dist(p) > r {
			bs = append(bs, b)
		}
	}
	w.Buildings = bs
	ts := w.Trees[:0]
	for _, t := range w.Trees {
		if t.Dist(p.WithZ(t.TopZ/2)) > r {
			ts = append(ts, t)
		}
	}
	w.Trees = ts
	ws := w.Water[:0]
	for _, wa := range w.Water {
		if wa.Dist(p) > r {
			ws = append(ws, wa)
		}
	}
	w.Water = ws
}

// placeMission selects the GPS goal, true marker, and decoy markers.
func placeMission(sc *Scenario, rng *rand.Rand) error {
	w := sc.World
	dict := vision.DefaultDictionary()
	const markerSize = 2.0

	for attempt := 0; attempt < 200; attempt++ {
		theta := rng.Float64() * 2 * math.Pi
		dist := 45 + rng.Float64()*30
		gx := math.Cos(theta) * dist
		gy := math.Sin(theta) * dist
		if !w.Bounds.Contains(geom.V3(gx, gy, 1)) {
			continue
		}
		// Marker within 8m of the GPS goal on free ground.
		var mx, my float64
		found := false
		for mi := 0; mi < 60; mi++ {
			mx = gx + (rng.Float64()-0.5)*16
			my = gy + (rng.Float64()-0.5)*16
			if w.FreeGroundPosition(mx, my, 3.5) {
				found = true
				break
			}
		}
		if !found {
			continue
		}
		targetID := rng.Intn(len(dict.Markers))
		// A clear descent cone above the marker.
		clearBubble(w, geom.V3(mx, my, 0), 4.5)

		w.Markers = append(w.Markers, vision.MarkerInstance{
			Marker: dict.Markers[targetID],
			Center: geom.V3(mx, my, 0),
			Size:   markerSize,
			Yaw:    rng.Float64() * 2 * math.Pi,
		})
		// Decoys: 1–3 markers with different IDs in the surrounding area.
		nDecoys := 1 + rng.Intn(3)
		for d := 0; d < nDecoys; d++ {
			for di := 0; di < 40; di++ {
				dx := mx + (rng.Float64()-0.5)*36
				dy := my + (rng.Float64()-0.5)*36
				if math.Hypot(dx-mx, dy-my) < 6 {
					continue // not on top of the target
				}
				if !w.FreeGroundPosition(dx, dy, 3) {
					continue
				}
				id := rng.Intn(len(dict.Markers))
				if id == targetID {
					id = (id + 1) % len(dict.Markers)
				}
				w.Markers = append(w.Markers, vision.MarkerInstance{
					Marker: dict.Markers[id],
					Center: geom.V3(dx, dy, 0),
					Size:   markerSize,
					Yaw:    rng.Float64() * 2 * math.Pi,
				})
				break
			}
		}

		sc.GPSGoal = geom.V3(gx, gy, 0)
		sc.TargetID = targetID
		sc.TrueMarker = geom.V3(mx, my, 0)
		return nil
	}
	return fmt.Errorf("worldgen: could not place mission on map %q", sc.Map.Name)
}

// genWeather builds the per-scenario weather: scenarios 0–4 are normal,
// 5–9 adverse (the paper's 50/50 split).
func genWeather(rng *rand.Rand, scIndex int) sim.Weather {
	if scIndex < NumScenariosPerMap/2 {
		// Normal: calm with light wind.
		return sim.Weather{
			Wind:    geom.V3((rng.Float64()-0.5)*1.6, (rng.Float64()-0.5)*1.6, 0),
			GustStd: rng.Float64() * 0.5,
		}
	}
	// Adverse: sample a dominant condition plus secondary effects.
	wv := sim.Weather{
		Wind: geom.V3((rng.Float64()-0.5)*5, (rng.Float64()-0.5)*5, 0),
	}
	switch scIndex % 5 {
	case 0: // fog bank
		wv.Fog = 0.5 + rng.Float64()*0.4
		wv.DuskDim = 0.2 * rng.Float64()
		wv.GPSDegradation = 0.3 + 0.3*rng.Float64()
	case 1: // rain squall
		wv.Rain = 0.5 + rng.Float64()*0.5
		wv.GustStd = 1.4 + rng.Float64()
		wv.GPSDegradation = 0.4 + 0.4*rng.Float64()
		wv.DuskDim = 0.3 + 0.2*rng.Float64()
	case 2: // harsh sun
		wv.GlareProb = 0.45 + 0.3*rng.Float64()
		wv.ShadowProb = 0.35 + 0.3*rng.Float64()
	case 3: // dusk operations
		wv.DuskDim = 0.5 + 0.35*rng.Float64()
		wv.GPSDegradation = 0.2 * rng.Float64()
	default: // gusty front
		wv.GustStd = 1.8 + rng.Float64()*1.2
		wv.ShadowProb = 0.25
		wv.GPSDegradation = 0.3 + 0.3*rng.Float64()
	}
	return wv
}
