package fault

import (
	"strings"
	"testing"
)

// FuzzParsePlan drives the -faults flag grammar parser with arbitrary
// input. Three properties must hold for every input:
//
//  1. ParsePlan never panics — it is fed directly from the command line.
//  2. An accepted plan validates: ParsePlan's error path is the only
//     gate, so whatever it returns must already satisfy Plan.Validate.
//  3. The grammar round-trips: String() renders in the same grammar, so
//     re-parsing an accepted plan's rendering must succeed and reproduce
//     the rendering exactly. This pins String and ParsePlan as inverses,
//     which the bench tools rely on when echoing a plan into logs that
//     are later replayed.
func FuzzParsePlan(f *testing.F) {
	// The documented grammar, corner by corner: presets, bare windows,
	// durations, options, multi-fault plans, surrounding whitespace, and
	// the inputs the parser must reject without panicking.
	seeds := []string{
		"",
		"none",
		"storm",
		"degraded",
		"gps-drift@20",
		"gps-drift@20+30",
		"gps-drift@20+30:mag=0.5",
		"depth-dropout@10+15:prob=0.8",
		"gps-drift@20+30:mag=0.5;depth-dropout@10+15",
		"comms-blackout@60+5;thrust-loss@30+20:mag=0.35",
		"detector-phantom@50+30:prob=0.25,mag=2",
		"  wind-gust@12.5+7.25 : mag=3 ",
		"gps-drift@-1",
		"thrust-loss@10:mag=1",
		"bogus-kind@5",
		"gps-drift@",
		"@10",
		"gps-drift@20:mag",
		"gps-drift@20:vol=3",
		"gps-drift@1e309",
		";;;",
		"not-a-preset",
	}
	for _, s := range seeds {
		f.Add(s)
	}

	f.Fuzz(func(t *testing.T, spec string) {
		p, err := ParsePlan(spec)
		if err != nil {
			return
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("ParsePlan(%q) accepted a plan that fails Validate: %v", spec, err)
		}
		if !p.Active() {
			// nil or empty plans render as "none", which parses back to nil;
			// nothing further to round-trip.
			return
		}
		rendered := p.String()
		p2, err := ParsePlan(rendered)
		if err != nil {
			t.Fatalf("ParsePlan(%q) = %q, which does not re-parse: %v", spec, rendered, err)
		}
		if got := p2.String(); got != rendered {
			t.Fatalf("round trip diverges: ParsePlan(%q) renders %q, re-parse renders %q",
				spec, rendered, got)
		}
		if strings.ContainsAny(rendered, " \t\n") {
			t.Fatalf("String() output %q contains whitespace; must be flag-safe", rendered)
		}
	})
}
