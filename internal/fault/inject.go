package fault

import (
	"math"
	"math/rand"

	"repro/internal/detect"
	"repro/internal/geom"
	"repro/internal/vision"
)

// Streams are the per-concern RNG streams of one run's injector, derived
// by the caller from the run seed with distinct SplitMix64 salts (the
// scenario package's stream-splitting scheme). Each stream is owned by
// exactly one goroutine:
//
//   - Depth and Color belong to the perception side — the control loop in
//     an inline mission, the stage goroutine in a pipelined one — exactly
//     like the cameras whose faults they drive.
//   - Detector belongs to the control loop (the detection tap runs inside
//     System.Step in every runner mode).
//   - GPS, Actuator, Wind and Comms belong to the control loop.
type Streams struct {
	Depth    *rand.Rand
	Color    *rand.Rand
	Detector *rand.Rand
	GPS      *rand.Rand
	Actuator *rand.Rand
	Wind     *rand.Rand
	Comms    *rand.Rand
}

// Target tells the injector what a dangerous phantom detection looks like:
// the mission's marker ID and the downward camera's frame size.
type Target struct {
	ID             int
	FrameW, FrameH int
}

// Injector executes one run's fault Plan. Construction is cheap; the
// runner only builds one when the plan is active, keeping the nil-plan
// mission on the zero-alloc hot path.
//
// Concurrency contract: Tick, TapDetections, GPS/actuator/wind/comms
// queries and the metric accessors belong to the control-loop goroutine.
// DropDepth, DepthNoiseScale, DropFrame and CorruptFrame belong to the
// perception side and touch only the immutable plan plus their own RNG
// streams, so a pipelined stage may call them concurrently with Tick.
type Injector struct {
	plan *Plan
	s    Streams
	tgt  Target

	// Control-loop-owned bookkeeping.
	wasActive []bool // per fault: active on the previous Tick
	// driftDirs holds each gps-drift window's heading, drawn from the GPS
	// stream at that window's activation — per window, so overlapping
	// windows each ramp from their own start instead of stepping.
	driftDirs  []geom.Vec3
	injections int
	events     []Event

	detScratch []detect.Detection
}

// NewInjector builds the runtime for one run of the plan. The plan must be
// Active (callers skip construction otherwise) and is retained by
// reference; it must not be mutated afterwards.
func NewInjector(p *Plan, s Streams, tgt Target) *Injector {
	return &Injector{
		plan:      p,
		s:         s,
		tgt:       tgt,
		wasActive: make([]bool, len(p.Faults)),
		driftDirs: make([]geom.Vec3, len(p.Faults)),
	}
}

// TickState is the control-loop view of one tick's faults. All stochastic
// control-side draws happen inside Tick, so each concern's stream is
// consumed at a cadence that depends only on (Plan, tick) — never on
// system state — which is what keeps fault campaigns bit-identical across
// worker counts and runner modes.
type TickState struct {
	// Degraded reports any active fault this tick (the degraded-mode
	// ticks metric counts these).
	Degraded bool
	// Blackout freezes the system under test and holds the last command.
	Blackout bool
	// GPSBias is the injected receiver bias (zero when no drift fault).
	GPSBias geom.Vec3
	// ThrustFactor scales the vehicle's velocity authority; 1 = nominal.
	ThrustFactor float64
	// ExtraDelayTicks adds actuation latency on top of the timing profile.
	ExtraDelayTicks int
	// DropCommand discards this tick's command (controller holds).
	DropCommand bool
	// ExtraGust is the injected wind sample for this tick.
	ExtraGust geom.Vec3
	// Events carries the activation/deactivation edges that happened this
	// tick, for the telemetry timeline; nil on most ticks.
	Events []Event
}

// Tick advances the injector to mission time now and returns the tick's
// control-side fault state. Control-loop goroutine only.
func (in *Injector) Tick(now float64) TickState {
	st := TickState{ThrustFactor: 1}
	edges := 0
	for i := range in.plan.Faults {
		f := &in.plan.Faults[i]
		active := f.activeAt(now)
		if active != in.wasActive[i] {
			in.wasActive[i] = active
			in.events = append(in.events, Event{T: now, Kind: f.Kind, Active: active})
			edges++
			if active {
				in.injections++
				if f.Kind == GPSDrift {
					// Heading drawn once per window at activation; the
					// ramp itself is deterministic. When the window ends
					// the bias snaps back (receiver reacquires).
					a := in.s.GPS.Float64() * 2 * math.Pi
					in.driftDirs[i] = geom.V3(math.Cos(a), math.Sin(a), 0)
				}
			}
		}
		if !active {
			continue
		}
		st.Degraded = true
		switch f.Kind {
		case CommsBlackout:
			st.Blackout = true
		case GPSDrift:
			// Each window ramps from its own start, so overlapping windows
			// superpose smoothly instead of stepping.
			st.GPSBias = st.GPSBias.Add(in.driftDirs[i].Scale(f.magnitude() * (now - f.Start)))
		case ThrustLoss:
			st.ThrustFactor *= 1 - f.magnitude()
		case CommandDelay:
			// Overlapping delay windows do not stack: the worst link
			// dominates. (This also keeps MaxExtraDelayTicks — which sizes
			// the runner's command ring — an exact bound.)
			if d := delayTicks(*f); d > st.ExtraDelayTicks {
				st.ExtraDelayTicks = d
			}
		case CommandDropout:
			if in.s.Actuator.Float64() < f.probability() {
				st.DropCommand = true
			}
		case WindGust:
			sigma := f.magnitude()
			st.ExtraGust = st.ExtraGust.Add(geom.V3(
				in.s.Wind.NormFloat64()*sigma,
				in.s.Wind.NormFloat64()*sigma,
				in.s.Wind.NormFloat64()*sigma*0.3,
			))
		}
	}
	if edges > 0 {
		st.Events = in.events[len(in.events)-edges:]
	}
	return st
}

// delayTicks resolves a command-delay window's magnitude to whole ticks,
// rounding up so any active window delays by at least one tick (plain
// truncation would make fractional magnitudes a silent no-op).
func delayTicks(f Fault) int {
	return int(math.Ceil(f.magnitude()))
}

// MaxExtraDelayTicks returns the largest actuation delay any window can
// add, for sizing the runner's command ring once per run. Uses the same
// rounding as Tick, so the ring always covers the injected delay.
func (in *Injector) MaxExtraDelayTicks() int {
	max := 0
	for _, f := range in.plan.Faults {
		if f.Kind == CommandDelay {
			if d := delayTicks(f); d > max {
				max = d
			}
		}
	}
	return max
}

// Injections returns the number of fault-window activations so far.
func (in *Injector) Injections() int { return in.injections }

// Events returns the activation/deactivation timeline so far.
func (in *Injector) Events() []Event { return in.events }

// WindowsOver reports whether every window of the plan has permanently
// deactivated by mission time now, and the time the last one ended —
// the reference point of the time-to-recover metric. Plans containing an
// unbounded window never report over.
func (in *Injector) WindowsOver(now float64) (over bool, end float64) {
	for _, f := range in.plan.Faults {
		e, bounded := f.end()
		if !bounded {
			return false, 0
		}
		if e > end {
			end = e
		}
	}
	return now >= end, end
}

// --- Perception-side queries (stage goroutine in a pipelined mission) ---

// DropDepth reports whether the depth capture due at mission time now is
// eaten by a dropout window. Consumes the Depth stream once per active
// query.
func (in *Injector) DropDepth(now float64) bool {
	for _, f := range in.plan.Faults {
		if f.Kind == DepthDropout && f.activeAt(now) {
			if in.s.Depth.Float64() < f.probability() {
				return true
			}
		}
	}
	return false
}

// DepthNoiseScale returns the factor to apply to the depth camera's noise
// sigma at mission time now (1 = nominal). Pure.
func (in *Injector) DepthNoiseScale(now float64) float64 {
	scale := 1.0
	for _, f := range in.plan.Faults {
		if f.Kind == DepthNoise && f.activeAt(now) {
			scale *= f.magnitude()
		}
	}
	return scale
}

// DropFrame reports whether the camera frame due at mission time now is
// eaten by a dropout window. Consumes the Color stream once per active
// query.
func (in *Injector) DropFrame(now float64) bool {
	for _, f := range in.plan.Faults {
		if f.Kind == ColorDropout && f.activeAt(now) {
			if in.s.Color.Float64() < f.probability() {
				return true
			}
		}
	}
	return false
}

// CorruptFrame applies active color-noise windows to a captured frame in
// place. Consumes the Color stream; perception side.
func (in *Injector) CorruptFrame(im *vision.Image, now float64) {
	sigma := 0.0
	for _, f := range in.plan.Faults {
		if f.Kind == ColorNoise && f.activeAt(now) {
			sigma += f.magnitude()
		}
	}
	if sigma > 0 {
		im.AddNoise(sigma, in.s.Color)
	}
}

// --- Detection tap (control loop, inside System.Step) ---

// TapDetections filters and augments one frame's detector output per the
// active detector-fault windows at mission time now. The returned slice is
// injector-owned scratch, valid until the next call — the system consumes
// detections within the Step that received them.
func (in *Injector) TapDetections(now float64, dets []detect.Detection) []detect.Detection {
	missP := -1.0
	phantomP := -1.0
	for _, f := range in.plan.Faults {
		if !f.activeAt(now) {
			continue
		}
		switch f.Kind {
		case DetectorMiss:
			if p := f.probability(); p > missP {
				missP = p
			}
		case DetectorPhantom:
			if p := f.probability(); p > phantomP {
				phantomP = p
			}
		}
	}
	if missP < 0 && phantomP < 0 {
		return dets
	}
	out := in.detScratch[:0]
	for _, d := range dets {
		// One draw per detection while a miss window is active.
		if missP >= 0 && in.s.Detector.Float64() < missP {
			continue
		}
		out = append(out, d)
	}
	if phantomP >= 0 && in.s.Detector.Float64() < phantomP {
		out = append(out, detect.Detection{
			ID: in.tgt.ID,
			Center: geom.V2(
				in.s.Detector.Float64()*float64(in.tgt.FrameW),
				in.s.Detector.Float64()*float64(in.tgt.FrameH),
			),
			SizePx:     12 + in.s.Detector.Float64()*20,
			Confidence: 0.6 + in.s.Detector.Float64()*0.4,
		})
	}
	in.detScratch = out
	return out
}
