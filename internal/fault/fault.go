// Package fault is the deterministic fault-injection subsystem that turns
// the campaign engine into a dependability benchmark (the paper is a DSN
// dependability study: the interesting scenarios are the degraded ones).
//
// A Plan is a declarative set of timed fault activations — sensor dropout
// and noise bursts, detector corruption, GPS drift, actuator degradation,
// wind gusts, and offboard-comms blackout — that the scenario runner
// injects at the simulation boundary. The system under test is never told
// a fault is active; it sees only the degraded sensor data and the
// degraded vehicle response, exactly as a fielded system would.
//
// Determinism is the design center. Every stochastic element of a fault
// (which frame a dropout eats, where a phantom detection lands, the gust
// sample of a storm burst) draws from its own per-concern RNG stream
// derived from the run seed with a SplitMix64-mixed salt (the scheme of
// internal/scenario/grid.go), so a fault campaign is a pure function of
// (seed, Plan): bit-identical across worker counts, checkpoint resumes,
// and shard-merge orders. Plans ride scenario.Timing, so they flow into
// campaign Specs, checkpoint-journal signatures, and the shard wire format
// without any extra plumbing.
//
// Field ownership mirrors the pipelined runner's: window activity is a
// pure function of (Plan, time) so both the control loop and a concurrent
// perception stage may query it, while each RNG stream and all mutable
// bookkeeping belong to exactly one goroutine (see Injector).
package fault

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Kind names one fault concern. The string values are the wire format
// (plans are persisted in campaign signatures, journals and shard files) —
// never rename one, only append.
type Kind string

// The injectable fault kinds.
const (
	// DepthDropout suppresses forward depth captures: the mapper goes
	// blind (Probability per due frame, default 1).
	DepthDropout Kind = "depth-dropout"
	// DepthNoise multiplies the depth camera's range noise sigma by
	// Magnitude (default 6) — a degraded stereo match.
	DepthNoise Kind = "depth-noise"
	// ColorDropout suppresses downward camera frames: the detector sees
	// nothing (Probability per due frame, default 1).
	ColorDropout Kind = "color-dropout"
	// ColorNoise adds zero-mean pixel noise of sigma Magnitude (default
	// 0.08) to captured frames — sensor degradation beyond the weather.
	ColorNoise Kind = "color-noise"
	// DetectorMiss drops each detection leaving the detector with
	// Probability (default 1) — missed detections.
	DetectorMiss Kind = "detector-miss"
	// DetectorPhantom injects a spurious detection of the mission's target
	// marker at a uniform random image position with Probability per frame
	// (default 0.25) — phantom detections / marker spoofing.
	DetectorPhantom Kind = "detector-phantom"
	// GPSDrift adds a bias ramp of Magnitude m/s (default 0.35) in a
	// random horizontal direction drawn at activation — the
	// weather-correlated position drift of §V-C, on demand.
	GPSDrift Kind = "gps-drift"
	// ThrustLoss scales the vehicle's achieved velocity authority by
	// (1 - Magnitude), Magnitude default 0.4 — partial power loss. The
	// magnitude must stay below 1: the model degrades authority, it does
	// not remove it (Validate rejects a total loss).
	ThrustLoss Kind = "thrust-loss"
	// CommandDelay adds Magnitude (default 4) control ticks of extra
	// actuation latency while active — a congested offboard link.
	// Fractional magnitudes round up, so any active window delays by at
	// least one whole tick; overlapping windows do not stack (the worst
	// link dominates).
	CommandDelay Kind = "command-delay"
	// CommandDropout drops the tick's command with Probability (default
	// 0.5); the flight controller holds the last applied command.
	CommandDropout Kind = "command-dropout"
	// WindGust adds zero-mean gusts of sigma Magnitude m/s (default 2.5)
	// on top of the scenario's weather.
	WindGust Kind = "wind-gust"
	// CommsBlackout severs the offboard link: the system under test is
	// frozen (no sensor epochs in, no commands out) and the flight
	// controller holds the last commanded setpoint — the HIL tier's
	// link-loss failure mode.
	CommsBlackout Kind = "comms-blackout"
)

// Kinds lists every fault kind in a stable order.
func Kinds() []Kind {
	return []Kind{
		DepthDropout, DepthNoise, ColorDropout, ColorNoise,
		DetectorMiss, DetectorPhantom, GPSDrift,
		ThrustLoss, CommandDelay, CommandDropout,
		WindGust, CommsBlackout,
	}
}

// Fault is one timed activation window of one fault kind.
type Fault struct {
	Kind Kind `json:"kind"`
	// Start is the activation time in mission seconds.
	Start float64 `json:"start"`
	// Duration is the window length in seconds; zero (or omitted) means
	// until the mission ends (an unrecoverable fault). Negative durations
	// are rejected by Validate — silently reading a typo as "forever"
	// would make every mission fly degraded to the end.
	Duration float64 `json:"duration,omitempty"`
	// Magnitude is the kind-specific severity (noise scale, drift m/s,
	// thrust fraction lost, delay ticks, gust sigma); 0 selects the
	// kind's documented default.
	Magnitude float64 `json:"magnitude,omitempty"`
	// Probability is the per-event rate of stochastic kinds (dropouts,
	// misses, phantoms); 0 selects the kind's documented default.
	Probability float64 `json:"probability,omitempty"`
}

// activeAt reports whether the window covers mission time t. Pure: safe to
// call from the control loop and a perception stage concurrently.
func (f Fault) activeAt(t float64) bool {
	if t < f.Start {
		return false
	}
	return f.Duration <= 0 || t < f.Start+f.Duration
}

// end returns the window's deactivation time and whether one exists.
func (f Fault) end() (float64, bool) {
	if f.Duration <= 0 {
		return 0, false
	}
	return f.Start + f.Duration, true
}

// magnitude resolves the kind default from the Info table.
func (f Fault) magnitude() float64 {
	if f.Magnitude > 0 {
		return f.Magnitude
	}
	in, _ := KindInfo(f.Kind)
	return in.DefaultMagnitude
}

// probability resolves the kind default from the Info table; kinds
// without a documented default draw unconditionally.
func (f Fault) probability() float64 {
	if f.Probability > 0 {
		return f.Probability
	}
	if in, ok := KindInfo(f.Kind); ok && in.DefaultProbability > 0 {
		return in.DefaultProbability
	}
	return 1
}

// Plan is a declarative set of fault activations for one run. The zero
// value (and nil) injects nothing and must cost nothing: the runner keeps
// the nil-Plan mission on the zero-alloc hot path, bit-identical to a run
// executed before this subsystem existed.
//
// A Plan is immutable once it enters a campaign Spec: it is shared by
// every worker, rides the Spec signature into checkpoint journals, and is
// serialized by value into shard files.
type Plan struct {
	Faults []Fault `json:"faults"`
}

// Active reports whether the plan injects anything, nil-safely.
func (p *Plan) Active() bool { return p != nil && len(p.Faults) > 0 }

// Validate checks kinds and window parameters.
func (p *Plan) Validate() error {
	if p == nil {
		return nil
	}
	known := map[Kind]bool{}
	for _, k := range Kinds() {
		known[k] = true
	}
	for i, f := range p.Faults {
		if !known[f.Kind] {
			return fmt.Errorf("fault: unknown kind %q (fault %d)", f.Kind, i)
		}
		if f.Start < 0 {
			return fmt.Errorf("fault: %s start %.2f < 0 (fault %d)", f.Kind, f.Start, i)
		}
		if f.Duration < 0 {
			return fmt.Errorf("fault: %s duration %.2f < 0 (use 0 or omit for until-mission-end) (fault %d)", f.Kind, f.Duration, i)
		}
		if f.Probability < 0 || f.Probability > 1 {
			return fmt.Errorf("fault: %s probability %.2f outside [0,1] (fault %d)", f.Kind, f.Probability, i)
		}
		if f.Magnitude < 0 {
			return fmt.Errorf("fault: %s magnitude %.2f < 0 (fault %d)", f.Kind, f.Magnitude, i)
		}
		if f.Kind == ThrustLoss && f.Magnitude >= 1 {
			// A factor of exactly 0 would read as "invalid" to the vehicle
			// tap and silently restore nominal thrust; the model degrades
			// authority, it does not remove it.
			return fmt.Errorf("fault: thrust-loss magnitude %.2f, want < 1 (fault %d)", f.Magnitude, i)
		}
	}
	return nil
}

// String renders the plan in the -faults spec grammar (parseable by
// ParsePlan).
func (p *Plan) String() string {
	if !p.Active() {
		return "none"
	}
	parts := make([]string, 0, len(p.Faults))
	for _, f := range p.Faults {
		s := fmt.Sprintf("%s@%s", f.Kind, trimFloat(f.Start))
		if f.Duration > 0 {
			s += "+" + trimFloat(f.Duration)
		}
		var opts []string
		if f.Magnitude > 0 {
			opts = append(opts, "mag="+trimFloat(f.Magnitude))
		}
		if f.Probability > 0 {
			opts = append(opts, "prob="+trimFloat(f.Probability))
		}
		if len(opts) > 0 {
			s += ":" + strings.Join(opts, ",")
		}
		parts = append(parts, s)
	}
	return strings.Join(parts, ";")
}

func trimFloat(v float64) string {
	return strconv.FormatFloat(v, 'f', -1, 64)
}

// MarshalText / UnmarshalText are intentionally NOT implemented: plans are
// persisted as structured JSON (the journal/shard wire format), and the
// compact grammar below exists only for the -faults command-line flag.

// ParsePlan parses the -faults flag grammar: either a preset name
// (see Presets) or a semicolon-separated fault list where each fault is
//
//	kind@start[+duration][:key=value,...]
//
// with keys mag (magnitude) and prob (probability). Times are mission
// seconds. Example:
//
//	gps-drift@20+30:mag=0.5;depth-dropout@10+15:prob=0.8;comms-blackout@60+5
func ParsePlan(spec string) (*Plan, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "none" {
		return nil, nil
	}
	if !strings.ContainsAny(spec, "@") {
		if p, ok := preset(spec); ok {
			return p, nil
		}
		return nil, fmt.Errorf("fault: unknown preset %q (have %s)", spec, strings.Join(Presets(), ", "))
	}
	var p Plan
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kindStr, rest, ok := strings.Cut(part, "@")
		if !ok {
			return nil, fmt.Errorf("fault: %q: want kind@start[+duration][:opts]", part)
		}
		f := Fault{Kind: Kind(strings.TrimSpace(kindStr))}
		timeStr, optStr, hasOpts := strings.Cut(rest, ":")
		startStr, durStr, hasDur := strings.Cut(timeStr, "+")
		var err error
		if f.Start, err = strconv.ParseFloat(strings.TrimSpace(startStr), 64); err != nil {
			return nil, fmt.Errorf("fault: %q: bad start: %v", part, err)
		}
		if hasDur {
			if f.Duration, err = strconv.ParseFloat(strings.TrimSpace(durStr), 64); err != nil {
				return nil, fmt.Errorf("fault: %q: bad duration: %v", part, err)
			}
		}
		if hasOpts {
			for _, opt := range strings.Split(optStr, ",") {
				k, v, ok := strings.Cut(strings.TrimSpace(opt), "=")
				if !ok {
					return nil, fmt.Errorf("fault: %q: bad option %q, want key=value", part, opt)
				}
				val, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
				if err != nil {
					return nil, fmt.Errorf("fault: %q: bad %s: %v", part, k, err)
				}
				switch strings.TrimSpace(k) {
				case "mag":
					f.Magnitude = val
				case "prob":
					f.Probability = val
				default:
					return nil, fmt.Errorf("fault: %q: unknown option %q (want mag or prob)", part, k)
				}
			}
		}
		p.Faults = append(p.Faults, f)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// presets are the named fault campaigns the bench tools sweep. Windows sit
// in the 10–70 s band where every benchmark mission is still airborne.
var presets = map[string]Plan{
	"sensor": {Faults: []Fault{
		{Kind: DepthDropout, Start: 15, Duration: 20},
		{Kind: ColorDropout, Start: 40, Duration: 12, Probability: 0.7},
		{Kind: DepthNoise, Start: 60, Duration: 20},
	}},
	"detector": {Faults: []Fault{
		{Kind: DetectorMiss, Start: 20, Duration: 25, Probability: 0.8},
		{Kind: DetectorPhantom, Start: 50, Duration: 30},
	}},
	"gps": {Faults: []Fault{
		{Kind: GPSDrift, Start: 20, Duration: 40},
	}},
	"actuator": {Faults: []Fault{
		{Kind: ThrustLoss, Start: 15, Duration: 30},
		{Kind: CommandDropout, Start: 50, Duration: 15},
		{Kind: CommandDelay, Start: 70, Duration: 20},
	}},
	"storm": {Faults: []Fault{
		{Kind: WindGust, Start: 10, Duration: 60, Magnitude: 3.0},
		{Kind: ColorNoise, Start: 10, Duration: 60},
		{Kind: GPSDrift, Start: 25, Duration: 35, Magnitude: 0.25},
	}},
	"blackout": {Faults: []Fault{
		{Kind: CommsBlackout, Start: 25, Duration: 6},
		{Kind: CommsBlackout, Start: 55, Duration: 10},
	}},
	"degraded": {Faults: []Fault{
		{Kind: GPSDrift, Start: 15, Duration: 30, Magnitude: 0.2},
		{Kind: DepthDropout, Start: 30, Duration: 10, Probability: 0.6},
		{Kind: DetectorMiss, Start: 45, Duration: 15, Probability: 0.5},
		{Kind: WindGust, Start: 20, Duration: 40, Magnitude: 1.5},
	}},
}

// Presets lists the preset names in sorted order.
func Presets() []string {
	names := make([]string, 0, len(presets))
	for n := range presets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// preset returns a copy of the named preset plan.
func preset(name string) (*Plan, bool) {
	p, ok := presets[name]
	if !ok {
		return nil, false
	}
	cp := Plan{Faults: append([]Fault(nil), p.Faults...)}
	return &cp, true
}

// Event is one fault activation or deactivation, for the telemetry
// timeline.
type Event struct {
	T      float64
	Kind   Kind
	Active bool
}
