package fault

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// docs_test verifies docs/faults.md against the implementation so the
// grammar reference cannot drift from the code: every fenced ```plan
// example must parse, the kind table must match the Infos() catalog
// field by field, and every preset must appear with its exact rendered
// plan string.

func readFaultsDoc(t *testing.T) string {
	t.Helper()
	b, err := os.ReadFile(filepath.Join("..", "..", "docs", "faults.md"))
	if err != nil {
		t.Fatalf("docs/faults.md unreadable: %v", err)
	}
	return string(b)
}

// planFences extracts the lines of every ```plan fenced block.
func planFences(doc string) []string {
	var lines []string
	inFence := false
	for _, line := range strings.Split(doc, "\n") {
		trimmed := strings.TrimSpace(line)
		switch {
		case trimmed == "```plan":
			inFence = true
		case inFence && strings.HasPrefix(trimmed, "```"):
			inFence = false
		case inFence && trimmed != "":
			lines = append(lines, trimmed)
		}
	}
	return lines
}

func TestDocsPlanExamplesParse(t *testing.T) {
	doc := readFaultsDoc(t)
	examples := planFences(doc)
	if len(examples) < 10 {
		t.Fatalf("only %d ```plan examples found — fence extraction broken?", len(examples))
	}
	for _, ex := range examples {
		p, err := ParsePlan(ex)
		if err != nil {
			t.Errorf("documented plan %q does not parse: %v", ex, err)
			continue
		}
		// Documented plans must also round-trip through the renderer.
		if p.Active() {
			back, err := ParsePlan(p.String())
			if err != nil || back.String() != p.String() {
				t.Errorf("documented plan %q does not round-trip (%q, %v)", ex, p.String(), err)
			}
		}
	}
}

func TestDocsKindTableMatchesInfos(t *testing.T) {
	doc := readFaultsDoc(t)
	// Rows look like: | `kind` | axis | unit | default | search max |
	rows := map[string][]string{}
	for _, line := range strings.Split(doc, "\n") {
		line = strings.TrimSpace(line)
		if !strings.HasPrefix(line, "| `") {
			continue
		}
		cells := strings.Split(strings.Trim(line, "|"), "|")
		for i := range cells {
			cells[i] = strings.TrimSpace(cells[i])
		}
		if len(cells) != 5 {
			continue
		}
		name := strings.Trim(cells[0], "`")
		rows[name] = cells[1:]
	}
	fmtNum := func(v float64) string {
		if v == 0 {
			return ""
		}
		return strconv.FormatFloat(v, 'f', -1, 64)
	}
	for _, in := range Infos() {
		row, ok := rows[string(in.Kind)]
		if !ok {
			t.Errorf("docs kind table is missing %q", in.Kind)
			continue
		}
		def := in.DefaultMagnitude
		if in.Axis == AxisProbability {
			def = in.DefaultProbability
		}
		if in.Axis == AxisNone {
			def = 0
		}
		want := []string{string(in.Axis), in.Unit, fmtNum(def), fmtNum(in.SearchMax)}
		for i, w := range want {
			if row[i] != w {
				t.Errorf("docs kind table %s column %d: %q, code says %q", in.Kind, i+1, row[i], w)
			}
		}
		// Each kind also gets a prose bullet.
		if !strings.Contains(doc, "- `"+string(in.Kind)+"` —") {
			t.Errorf("docs kind list is missing the %q bullet", in.Kind)
		}
	}
	if len(rows) != len(Infos()) {
		t.Errorf("docs kind table has %d rows, code has %d kinds", len(rows), len(Infos()))
	}
}

func TestDocsPresetsMatchCatalog(t *testing.T) {
	doc := readFaultsDoc(t)
	examples := planFences(doc)
	documented := map[string]bool{}
	for _, ex := range examples {
		documented[ex] = true
	}
	for _, name := range Presets() {
		if !strings.Contains(doc, "### `"+name+"`") {
			t.Errorf("docs preset catalog is missing the %q section", name)
		}
		p, ok := preset(name)
		if !ok {
			t.Fatalf("preset %q vanished", name)
		}
		if !documented[p.String()] {
			t.Errorf("docs preset %q plan drifted: code renders %q, not found in any ```plan fence",
				name, p.String())
		}
	}
	// The heading count bounds extra (stale) preset sections.
	headings := strings.Count(doc, "\n### `")
	if headings != len(Presets()) {
		t.Errorf("docs have %d preset sections, code has %d presets", headings, len(Presets()))
	}
}

func TestDocsGrammarExampleMatchesGodoc(t *testing.T) {
	// The canonical example in the ParsePlan godoc must also appear in the
	// docs, so the two stay aligned.
	doc := readFaultsDoc(t)
	const canonical = "gps-drift@20+30:mag=0.5"
	if !strings.Contains(doc, canonical) {
		t.Errorf("docs lost the canonical grammar example %q", canonical)
	}
	if _, err := ParsePlan(canonical); err != nil {
		t.Errorf("canonical example no longer parses: %v", err)
	}
	// Sanity: an invalid spec is documented as rejected.
	if _, err := ParsePlan(fmt.Sprintf("thrust-loss@10:mag=%g", 1.0)); err == nil {
		t.Error("thrust-loss mag=1 accepted despite the documented < 1 rule")
	}
}
