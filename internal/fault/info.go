package fault

// Axis names the severity axis of a fault kind: the one knob that scales
// how hard the kind hits. Deterministic search (internal/faultsearch) and
// the documentation generator both key off it, which is why it lives here
// next to the kinds instead of in the tooling.
type Axis string

const (
	// AxisMagnitude: severity is Fault.Magnitude (a physical quantity —
	// sigma scale, m/s, ticks, fraction of authority).
	AxisMagnitude Axis = "magnitude"
	// AxisProbability: severity is Fault.Probability (the per-event rate
	// of a stochastic kind).
	AxisProbability Axis = "probability"
	// AxisNone: the kind is binary — the window is either active or not
	// (comms-blackout). Only the window itself can be minimized.
	AxisNone Axis = "none"
)

// Info is the severity-axis metadata of one fault kind. It is the single
// source of truth for kind defaults: the injector's magnitude/probability
// resolution, the fault-plan grammar reference in docs/faults.md (guarded
// by docs_test.go), and the faultsearch severity bisection all read this
// table, so they cannot drift apart.
type Info struct {
	Kind Kind
	// Summary is the one-line description of what the kind injects.
	Summary string
	// Axis names the severity axis Minimize searches.
	Axis Axis
	// Unit is the human unit of the severity axis ("x sigma", "m/s", ...);
	// empty for AxisNone.
	Unit string
	// DefaultMagnitude is the magnitude a zero Fault.Magnitude resolves
	// to; 0 for kinds without a magnitude axis.
	DefaultMagnitude float64
	// DefaultProbability is the probability a zero Fault.Probability
	// resolves to; 0 for kinds that never draw.
	DefaultProbability float64
	// SearchMax bounds the severity bisection: the most severe value a
	// frontier search may probe (1 for probability axes, a model-breaking
	// ceiling for magnitude axes, and <1 for thrust-loss because Validate
	// rejects a total loss).
	SearchMax float64
}

// infos is ordered exactly like Kinds(). Append only; the table is
// documentation-stable the same way the Kind strings are wire-stable.
var infos = []Info{
	{Kind: DepthDropout, Summary: "suppresses forward depth captures (the mapper goes blind)",
		Axis: AxisProbability, Unit: "drop probability/frame", DefaultProbability: 1, SearchMax: 1},
	{Kind: DepthNoise, Summary: "multiplies the depth camera's range-noise sigma",
		Axis: AxisMagnitude, Unit: "x sigma", DefaultMagnitude: 6, SearchMax: 12},
	{Kind: ColorDropout, Summary: "suppresses downward camera frames (the detector sees nothing)",
		Axis: AxisProbability, Unit: "drop probability/frame", DefaultProbability: 1, SearchMax: 1},
	{Kind: ColorNoise, Summary: "adds zero-mean pixel noise beyond the weather",
		Axis: AxisMagnitude, Unit: "pixel sigma", DefaultMagnitude: 0.08, SearchMax: 0.4},
	{Kind: DetectorMiss, Summary: "drops detections leaving the detector",
		Axis: AxisProbability, Unit: "miss probability/detection", DefaultProbability: 1, SearchMax: 1},
	{Kind: DetectorPhantom, Summary: "injects spurious target detections at random image positions",
		Axis: AxisProbability, Unit: "phantom probability/frame", DefaultProbability: 0.25, SearchMax: 1},
	{Kind: GPSDrift, Summary: "adds a position-bias ramp in a random horizontal direction",
		Axis: AxisMagnitude, Unit: "m/s drift rate", DefaultMagnitude: 0.35, SearchMax: 3},
	{Kind: ThrustLoss, Summary: "scales achieved velocity authority by (1 - magnitude)",
		Axis: AxisMagnitude, Unit: "fraction of authority lost", DefaultMagnitude: 0.4, SearchMax: 0.95},
	{Kind: CommandDelay, Summary: "adds whole control ticks of extra actuation latency",
		Axis: AxisMagnitude, Unit: "ticks", DefaultMagnitude: 4, SearchMax: 40},
	{Kind: CommandDropout, Summary: "drops the tick's command (the FCU holds the last one)",
		Axis: AxisProbability, Unit: "drop probability/tick", DefaultProbability: 0.5, SearchMax: 1},
	{Kind: WindGust, Summary: "adds zero-mean gusts on top of the scenario's weather",
		Axis: AxisMagnitude, Unit: "m/s gust sigma", DefaultMagnitude: 2.5, SearchMax: 8},
	{Kind: CommsBlackout, Summary: "severs the offboard link (stack frozen, FCU holds setpoint)",
		Axis: AxisNone, SearchMax: 1},
}

// Infos returns the severity metadata of every kind, in Kinds() order.
// The slice is a copy; mutate freely.
func Infos() []Info {
	out := make([]Info, len(infos))
	copy(out, infos)
	return out
}

// KindInfo returns the severity metadata of one kind.
func KindInfo(k Kind) (Info, bool) {
	for _, in := range infos {
		if in.Kind == k {
			return in, true
		}
	}
	return Info{}, false
}
