package fault

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/detect"
	"repro/internal/geom"
	"repro/internal/vision"
)

func testStreams(seed int64) Streams {
	return Streams{
		Depth:    rand.New(rand.NewSource(seed + 1)),
		Color:    rand.New(rand.NewSource(seed + 2)),
		Detector: rand.New(rand.NewSource(seed + 3)),
		GPS:      rand.New(rand.NewSource(seed + 4)),
		Actuator: rand.New(rand.NewSource(seed + 5)),
		Wind:     rand.New(rand.NewSource(seed + 6)),
		Comms:    rand.New(rand.NewSource(seed + 7)),
	}
}

func TestParsePlanGrammar(t *testing.T) {
	p, err := ParsePlan("gps-drift@20+30:mag=0.5;depth-dropout@10+15:prob=0.8;comms-blackout@60+5")
	if err != nil {
		t.Fatal(err)
	}
	want := []Fault{
		{Kind: GPSDrift, Start: 20, Duration: 30, Magnitude: 0.5},
		{Kind: DepthDropout, Start: 10, Duration: 15, Probability: 0.8},
		{Kind: CommsBlackout, Start: 60, Duration: 5},
	}
	if !reflect.DeepEqual(p.Faults, want) {
		t.Fatalf("parsed %+v, want %+v", p.Faults, want)
	}

	// String renders back into the grammar and re-parses to the same plan.
	p2, err := ParsePlan(p.String())
	if err != nil {
		t.Fatalf("String() output does not re-parse: %v", err)
	}
	if !reflect.DeepEqual(p, p2) {
		t.Fatalf("String round trip: %v != %v", p, p2)
	}
}

func TestParsePlanEmptyAndErrors(t *testing.T) {
	for _, spec := range []string{"", "none"} {
		p, err := ParsePlan(spec)
		if err != nil || p != nil {
			t.Fatalf("ParsePlan(%q) = %v, %v; want nil, nil", spec, p, err)
		}
	}
	for _, spec := range []string{
		"no-such-preset",
		"bogus-kind@10",
		"gps-drift@x",
		"gps-drift@10+y",
		"gps-drift@10:volume=11",
		"gps-drift@10:mag",
		"gps-drift@-5",
		"thrust-loss@10:mag=1.5",
		"thrust-loss@10:mag=1", // total loss would read as "invalid" at the vehicle tap
		"gps-drift@20+-30",     // negative duration would silently mean "forever"
		"depth-dropout@10:prob=2",
	} {
		if _, err := ParsePlan(spec); err == nil {
			t.Errorf("ParsePlan(%q) accepted invalid spec", spec)
		}
	}
}

func TestPresetsParseAndValidate(t *testing.T) {
	if len(Presets()) == 0 {
		t.Fatal("no presets")
	}
	for _, name := range Presets() {
		p, err := ParsePlan(name)
		if err != nil {
			t.Fatalf("preset %s: %v", name, err)
		}
		if !p.Active() {
			t.Fatalf("preset %s is empty", name)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("preset %s invalid: %v", name, err)
		}
	}
}

func TestPlanJSONRoundTrip(t *testing.T) {
	p, err := ParsePlan("storm")
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var q Plan
	if err := json.Unmarshal(b, &q); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*p, q) {
		t.Fatalf("JSON round trip: %+v != %+v", *p, q)
	}
	b2, err := json.Marshal(&q)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != string(b2) {
		t.Fatalf("re-encode not byte-identical:\n%s\n%s", b, b2)
	}
}

func TestPlanActiveNilSafe(t *testing.T) {
	var p *Plan
	if p.Active() {
		t.Error("nil plan reports active")
	}
	if (&Plan{}).Active() {
		t.Error("empty plan reports active")
	}
	if err := p.Validate(); err != nil {
		t.Errorf("nil plan validate: %v", err)
	}
	if got := p.String(); got != "none" {
		t.Errorf("nil plan String = %q", got)
	}
}

// TestInjectorDeterministic: two injectors over the same plan and stream
// seeds produce identical tick-state sequences and identical perception
// draws — the property that makes fault campaigns reproducible.
func TestInjectorDeterministic(t *testing.T) {
	plan, err := ParsePlan("degraded")
	if err != nil {
		t.Fatal(err)
	}
	run := func() ([]TickState, []bool) {
		in := NewInjector(plan, testStreams(99), Target{ID: 3, FrameW: 128, FrameH: 128})
		var states []TickState
		var drops []bool
		for i := 0; i < 1500; i++ {
			now := float64(i+1) * 0.05
			st := in.Tick(now)
			st.Events = nil // slice identity differs; edges are covered below
			states = append(states, st)
			if i%5 == 0 {
				drops = append(drops, in.DropDepth(now), in.DropFrame(now))
			}
		}
		return states, drops
	}
	s1, d1 := run()
	s2, d2 := run()
	if !reflect.DeepEqual(s1, s2) {
		t.Fatal("tick-state sequences differ across identical injectors")
	}
	if !reflect.DeepEqual(d1, d2) {
		t.Fatal("perception draws differ across identical injectors")
	}
}

func TestInjectorWindowsAndEvents(t *testing.T) {
	plan := &Plan{Faults: []Fault{
		{Kind: WindGust, Start: 1, Duration: 2},
		{Kind: CommsBlackout, Start: 4, Duration: 1},
	}}
	in := NewInjector(plan, testStreams(7), Target{})
	var degraded, blackout int
	for i := 0; i < 120; i++ { // 6 s at 50 ms
		st := in.Tick(float64(i+1) * 0.05)
		if st.Degraded {
			degraded++
		}
		if st.Blackout {
			blackout++
		}
	}
	if degraded != 60 { // 2 s gust + 1 s blackout at 20 ticks/s
		t.Errorf("degraded ticks = %d, want 60", degraded)
	}
	if blackout != 20 {
		t.Errorf("blackout ticks = %d, want 20", blackout)
	}
	if got := in.Injections(); got != 2 {
		t.Errorf("injections = %d, want 2", got)
	}
	events := in.Events()
	if len(events) != 4 { // two activations, two deactivations
		t.Fatalf("events = %+v, want 4 edges", events)
	}
	over, end := in.WindowsOver(6.0)
	if !over || end != 5.0 {
		t.Errorf("WindowsOver(6) = %v, %v; want true, 5", over, end)
	}
	if over, _ := in.WindowsOver(4.5); over {
		t.Error("WindowsOver(4.5) = true with the blackout still open")
	}

	// An unbounded window never reports over.
	in2 := NewInjector(&Plan{Faults: []Fault{{Kind: GPSDrift, Start: 1}}}, testStreams(8), Target{})
	in2.Tick(2)
	if over, _ := in2.WindowsOver(1000); over {
		t.Error("unbounded window reported over")
	}
}

func TestGPSDriftRampsAndReacquires(t *testing.T) {
	plan := &Plan{Faults: []Fault{{Kind: GPSDrift, Start: 1, Duration: 2, Magnitude: 0.5}}}
	in := NewInjector(plan, testStreams(3), Target{})
	var atStart, atEnd geom.Vec3
	for i := 0; i < 100; i++ {
		now := float64(i+1) * 0.05
		st := in.Tick(now)
		if now == 1.05 {
			atStart = st.GPSBias
		}
		if now == 2.95 {
			atEnd = st.GPSBias
		}
		if now > 3.0 && st.GPSBias != (geom.Vec3{}) {
			t.Fatalf("bias persists after window: %v at %v", st.GPSBias, now)
		}
	}
	if atEnd.Len() <= atStart.Len() {
		t.Errorf("drift did not ramp: %v -> %v", atStart.Len(), atEnd.Len())
	}
	// ~0.5 m/s for ~1.9 s ≈ 0.95 m.
	if atEnd.Len() < 0.5 || atEnd.Len() > 1.5 {
		t.Errorf("drift magnitude %v, want ≈0.95", atEnd.Len())
	}
	if atEnd.Z != 0 {
		t.Errorf("drift has vertical component %v", atEnd.Z)
	}
}

// TestGPSDriftOverlapRampsSmoothly: each drift window ramps from its own
// start, so a second window opening mid-episode adds no instantaneous
// bias step.
func TestGPSDriftOverlapRampsSmoothly(t *testing.T) {
	plan := &Plan{Faults: []Fault{
		{Kind: GPSDrift, Start: 1, Duration: 100, Magnitude: 0.1},
		{Kind: GPSDrift, Start: 50, Duration: 10, Magnitude: 0.5},
	}}
	in := NewInjector(plan, testStreams(21), Target{})
	const dt = 0.05
	var prev geom.Vec3
	// Stop before the second window's end: its bias legitimately snaps
	// back at deactivation (receiver reacquires).
	for i := 0; i < 1170; i++ { // 58.5 s
		now := float64(i+1) * dt
		st := in.Tick(now)
		// Max slope: both windows ramping, 0.6 m/s total.
		if jump := st.GPSBias.Sub(prev).Len(); jump > 0.61*dt {
			t.Fatalf("bias stepped %.3f m in one tick at t=%.2f (max smooth ramp %.3f)",
				jump, now, 0.61*dt)
		}
		prev = st.GPSBias
	}
}

func TestActuatorFaults(t *testing.T) {
	plan := &Plan{Faults: []Fault{
		{Kind: ThrustLoss, Start: 0.01, Duration: 100, Magnitude: 0.4},
		{Kind: CommandDelay, Start: 0.01, Duration: 100, Magnitude: 3},
		{Kind: CommandDropout, Start: 0.01, Duration: 100, Probability: 0.5},
	}}
	in := NewInjector(plan, testStreams(11), Target{})
	if got := in.MaxExtraDelayTicks(); got != 3 {
		t.Errorf("MaxExtraDelayTicks = %d, want 3", got)
	}

	// Fractional delay magnitudes round up: any active window injects at
	// least one tick (truncation would make them silent no-ops).
	frac := NewInjector(&Plan{Faults: []Fault{
		{Kind: CommandDelay, Start: 0.01, Duration: 10, Magnitude: 0.5},
	}}, testStreams(12), Target{})
	if got := frac.MaxExtraDelayTicks(); got != 1 {
		t.Errorf("fractional MaxExtraDelayTicks = %d, want 1", got)
	}
	if st := frac.Tick(1); st.ExtraDelayTicks != 1 {
		t.Errorf("fractional delay injected %d ticks, want 1", st.ExtraDelayTicks)
	}

	// Overlapping delay windows do not stack — the injected delay never
	// exceeds MaxExtraDelayTicks, which sizes the runner's command ring.
	overlap := NewInjector(&Plan{Faults: []Fault{
		{Kind: CommandDelay, Start: 1, Duration: 20, Magnitude: 4},
		{Kind: CommandDelay, Start: 5, Duration: 20, Magnitude: 3},
	}}, testStreams(13), Target{})
	bound := overlap.MaxExtraDelayTicks()
	if bound != 4 {
		t.Errorf("overlap MaxExtraDelayTicks = %d, want 4", bound)
	}
	if st := overlap.Tick(10); st.ExtraDelayTicks != 4 {
		t.Errorf("overlapping delays injected %d ticks, want the dominating 4 (ring bound %d)",
			st.ExtraDelayTicks, bound)
	}
	drops := 0
	const ticks = 2000
	for i := 0; i < ticks; i++ {
		st := in.Tick(float64(i+1) * 0.05)
		if st.ThrustFactor != 0.6 {
			t.Fatalf("thrust factor %v, want 0.6", st.ThrustFactor)
		}
		if st.ExtraDelayTicks != 3 {
			t.Fatalf("extra delay %d, want 3", st.ExtraDelayTicks)
		}
		if st.DropCommand {
			drops++
		}
	}
	if drops < ticks/3 || drops > 2*ticks/3 {
		t.Errorf("dropout rate %d/%d, want ≈ 1/2", drops, ticks)
	}
}

func TestTapDetectionsMissAndPhantom(t *testing.T) {
	dets := []detect.Detection{
		{ID: 1, Center: geom.V2(10, 10), Confidence: 0.9},
		{ID: 2, Center: geom.V2(50, 50), Confidence: 0.8},
	}

	// Certain miss drops everything.
	miss := NewInjector(&Plan{Faults: []Fault{{Kind: DetectorMiss, Start: 0.01, Duration: 10}}},
		testStreams(5), Target{ID: 7, FrameW: 128, FrameH: 128})
	if got := miss.TapDetections(1, dets); len(got) != 0 {
		t.Errorf("certain miss left %d detections", len(got))
	}

	// Certain phantom injects the target ID inside the frame.
	ph := NewInjector(&Plan{Faults: []Fault{{Kind: DetectorPhantom, Start: 0.01, Duration: 10, Probability: 1}}},
		testStreams(6), Target{ID: 7, FrameW: 128, FrameH: 128})
	got := ph.TapDetections(1, dets)
	if len(got) != 3 {
		t.Fatalf("phantom tap returned %d detections, want 3", len(got))
	}
	p := got[2]
	if p.ID != 7 {
		t.Errorf("phantom ID %d, want target 7", p.ID)
	}
	if p.Center.X < 0 || p.Center.X > 128 || p.Center.Y < 0 || p.Center.Y > 128 {
		t.Errorf("phantom center %v outside frame", p.Center)
	}
	if p.Confidence < 0.6 || p.Confidence > 1 {
		t.Errorf("phantom confidence %v", p.Confidence)
	}

	// Outside every window the tap is the identity.
	out := ph.TapDetections(100, dets)
	if len(out) != len(dets) || &out[0] != &dets[0] {
		t.Error("inactive tap did not pass detections through untouched")
	}
}

func TestCorruptFramePerturbsPixels(t *testing.T) {
	im := vision.NewImage(16, 16)
	im.Fill(0.5)
	in := NewInjector(&Plan{Faults: []Fault{{Kind: ColorNoise, Start: 0.01, Duration: 10, Magnitude: 0.2}}},
		testStreams(9), Target{})
	in.CorruptFrame(im, 1)
	changed := 0
	for _, v := range im.Pix {
		if v != 0.5 {
			changed++
		}
		if v < 0 || v > 1 {
			t.Fatalf("pixel %v outside [0,1]", v)
		}
	}
	if changed < len(im.Pix)/2 {
		t.Errorf("only %d/%d pixels perturbed", changed, len(im.Pix))
	}
	// Outside the window the frame is untouched.
	im2 := vision.NewImage(8, 8)
	im2.Fill(0.25)
	in.CorruptFrame(im2, 100)
	for _, v := range im2.Pix {
		if v != 0.25 {
			t.Fatal("inactive CorruptFrame modified the frame")
		}
	}
}

func TestDepthNoiseScale(t *testing.T) {
	in := NewInjector(&Plan{Faults: []Fault{{Kind: DepthNoise, Start: 5, Duration: 5}}},
		testStreams(2), Target{})
	if s := in.DepthNoiseScale(1); s != 1 {
		t.Errorf("inactive scale %v, want 1", s)
	}
	if s := in.DepthNoiseScale(7); s != 6 { // kind default
		t.Errorf("active scale %v, want default 6", s)
	}
}

// TestKindDefaults pins every kind's documented magnitude/probability
// defaults — campaign reproducibility depends on these never drifting
// silently.
func TestKindDefaults(t *testing.T) {
	mag := map[Kind]float64{
		DepthNoise: 6, ColorNoise: 0.08, GPSDrift: 0.35,
		ThrustLoss: 0.4, CommandDelay: 4, WindGust: 2.5,
		DepthDropout: 0, ColorDropout: 0, DetectorMiss: 0,
		DetectorPhantom: 0, CommandDropout: 0, CommsBlackout: 0,
	}
	prob := map[Kind]float64{
		DepthDropout: 1, ColorDropout: 1, DetectorMiss: 1,
		DetectorPhantom: 0.25, CommandDropout: 0.5,
		DepthNoise: 1, ColorNoise: 1, GPSDrift: 1, ThrustLoss: 1,
		CommandDelay: 1, WindGust: 1, CommsBlackout: 1,
	}
	for _, k := range Kinds() {
		f := Fault{Kind: k}
		if got := f.magnitude(); got != mag[k] {
			t.Errorf("%s default magnitude %v, want %v", k, got, mag[k])
		}
		if got := f.probability(); got != prob[k] {
			t.Errorf("%s default probability %v, want %v", k, got, prob[k])
		}
	}
	// Explicit values win over defaults.
	f := Fault{Kind: DepthNoise, Magnitude: 2.5, Probability: 0.1}
	if f.magnitude() != 2.5 || f.probability() != 0.1 {
		t.Errorf("explicit values not honored: %v %v", f.magnitude(), f.probability())
	}
}

// TestDropFrameAndDropDepthWindows: perception-side dropout queries fire
// only inside their windows and honor certain probabilities.
func TestDropFrameAndDropDepthWindows(t *testing.T) {
	plan := &Plan{Faults: []Fault{
		{Kind: ColorDropout, Start: 5, Duration: 5},
		{Kind: DepthDropout, Start: 20, Duration: 5},
	}}
	in := NewInjector(plan, testStreams(42), Target{})
	if in.DropFrame(1) || in.DropDepth(1) {
		t.Error("dropout fired outside every window")
	}
	if !in.DropFrame(7) {
		t.Error("certain color dropout did not fire inside its window")
	}
	if in.DropDepth(7) {
		t.Error("depth dropout fired inside the color window")
	}
	if !in.DropDepth(22) {
		t.Error("certain depth dropout did not fire inside its window")
	}
	if in.DropFrame(22) {
		t.Error("color dropout fired inside the depth window")
	}
}
