package sim

import (
	"math"

	"repro/internal/geom"
)

// Spatial index
//
// The per-tick hot paths of a run — collision checks, the lidar surface
// query, the depth-camera ray fan, and the per-pixel occluder test of the
// renderer — all interrogate the world's obstacle set. The naive World
// methods scan every building and tree linearly, which makes a single
// physics step O(obstacles) and a rendered frame O(pixels x obstacles).
//
// spatialIndex is a static uniform grid over the XY footprints of the
// world's buildings and trees (both are vertical solids, so a 2-D grid is
// exact for candidate generation). It is built once per world after
// generation finishes mutating the obstacle lists, and is strictly an
// accelerator: every query routed through it returns bit-identical results
// to the linear scan it replaces (see the equivalence and determinism
// tests). Queries that consume RNG draws per candidate — the depth
// camera's soft-canopy raycast — additionally preserve the exact candidate
// visit order of the linear scan by deduplicating and sorting candidates
// by obstacle index.
//
// Water rectangles stay linear: worlds carry at most a handful, and the
// OnWater test is a few comparisons.
//
// The index is immutable after build and therefore safe to share across
// goroutines, which is what lets the worldgen cache hand one world to many
// campaign workers.

// indexCell lists the obstacles whose padded footprints overlap one grid
// cell, by index into World.Buildings / World.Trees.
type indexCell struct {
	buildings []int32
	trees     []int32
}

// gridGeom is the geometry of a uniform XY grid: origin, cell size and
// extent, plus the coordinate and traversal primitives every grid query
// shares. The static spatial index and the dynamic fleet overlay
// (overlay.go) both embed it, so one cell-coordinate convention and one
// ray traversal serve the immutable world and the per-tick drone set.
type gridGeom struct {
	minX, minY float64
	cell       float64 // cell side length in meters
	invCell    float64
	nx, ny     int
}

// spatialIndex is a uniform XY grid over the world's obstacle footprints.
type spatialIndex struct {
	gridGeom
	cells []indexCell
}

// indexPad expands every registered footprint so queries landing exactly on
// a cell boundary (or suffering last-ulp traversal error) still find their
// obstacle in at least one visited cell. One millimeter costs nothing and
// removes the entire class of float-edge misses.
const indexPad = 1e-3

// BuildIndex constructs the static spatial index over the current obstacle
// lists. Call it once the world stops changing (worldgen does, at the end
// of Generate); the index is not updated by later mutations — mutate, then
// rebuild. Queries on a world without an index fall back to linear scans,
// so the index is never required for correctness.
func (w *World) BuildIndex() {
	ix := &spatialIndex{}
	ix.build(w)
	w.index = ix
}

// DropIndex removes the spatial index, restoring the linear-scan reference
// paths. The determinism guard tests use it to prove indexed and naive
// queries produce bit-identical run results.
func (w *World) DropIndex() { w.index = nil }

// Indexed reports whether the world carries a spatial index.
func (w *World) Indexed() bool { return w.index != nil }

// build (re)constructs the grid over w's obstacles, reusing ix's cell
// storage when possible so a per-frame rebuild over a small filtered world
// is allocation-free in steady state.
func (ix *spatialIndex) build(w *World) {
	nb, nt := len(w.Buildings), len(w.Trees)
	if nb == 0 && nt == 0 {
		ix.nx, ix.ny = 0, 0
		return
	}

	// Tight bounds over the obstacle footprints.
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	grow := func(x0, y0, x1, y1 float64) {
		minX, minY = math.Min(minX, x0), math.Min(minY, y0)
		maxX, maxY = math.Max(maxX, x1), math.Max(maxY, y1)
	}
	for i := range w.Buildings {
		b := &w.Buildings[i]
		grow(b.Min.X, b.Min.Y, b.Max.X, b.Max.Y)
	}
	for i := range w.Trees {
		t := &w.Trees[i]
		grow(t.Center.X-t.Radius, t.Center.Y-t.Radius, t.Center.X+t.Radius, t.Center.Y+t.Radius)
	}
	minX -= indexPad
	minY -= indexPad
	maxX += indexPad
	maxY += indexPad

	// Cell size: aim for a grid fine enough that a cell holds a handful of
	// obstacles but coarse enough that rays cross few cells. Clamped so
	// tiny filtered footprint worlds do not degenerate.
	extent := math.Max(maxX-minX, maxY-minY)
	cell := extent / 40
	if cell < 3 {
		cell = 3
	} else if cell > 15 {
		cell = 15
	}
	nx := int(math.Ceil((maxX - minX) / cell))
	ny := int(math.Ceil((maxY - minY) / cell))
	if nx < 1 {
		nx = 1
	}
	if ny < 1 {
		ny = 1
	}

	ix.minX, ix.minY = minX, minY
	ix.cell, ix.invCell = cell, 1/cell
	ix.nx, ix.ny = nx, ny
	if cap(ix.cells) < nx*ny {
		ix.cells = make([]indexCell, nx*ny)
	} else {
		ix.cells = ix.cells[:nx*ny]
		for i := range ix.cells {
			ix.cells[i].buildings = ix.cells[i].buildings[:0]
			ix.cells[i].trees = ix.cells[i].trees[:0]
		}
	}

	for i := range w.Buildings {
		b := &w.Buildings[i]
		ix.register(b.Min.X, b.Min.Y, b.Max.X, b.Max.Y, int32(i), false)
	}
	for i := range w.Trees {
		t := &w.Trees[i]
		ix.register(t.Center.X-t.Radius, t.Center.Y-t.Radius,
			t.Center.X+t.Radius, t.Center.Y+t.Radius, int32(i), true)
	}
}

// register adds obstacle idx to every cell its padded footprint overlaps.
func (ix *spatialIndex) register(x0, y0, x1, y1 float64, idx int32, tree bool) {
	cx0, cy0 := ix.cellCoord(x0-indexPad, y0-indexPad)
	cx1, cy1 := ix.cellCoord(x1+indexPad, y1+indexPad)
	for cy := cy0; cy <= cy1; cy++ {
		for cx := cx0; cx <= cx1; cx++ {
			c := &ix.cells[cy*ix.nx+cx]
			if tree {
				c.trees = append(c.trees, idx)
			} else {
				c.buildings = append(c.buildings, idx)
			}
		}
	}
}

// cellCoord maps a point to clamped cell coordinates.
func (g *gridGeom) cellCoord(x, y float64) (int, int) {
	cx := int((x - g.minX) * g.invCell)
	cy := int((y - g.minY) * g.invCell)
	if cx < 0 {
		cx = 0
	} else if cx >= g.nx {
		cx = g.nx - 1
	}
	if cy < 0 {
		cy = 0
	} else if cy >= g.ny {
		cy = g.ny - 1
	}
	return cx, cy
}

// cellIndexAt returns the linear index of the cell containing (x, y), or
// -1 when the point lies outside the gridded footprint.
func (g *gridGeom) cellIndexAt(x, y float64) int {
	if g.nx == 0 {
		return -1
	}
	fx := (x - g.minX) * g.invCell
	fy := (y - g.minY) * g.invCell
	if fx < 0 || fy < 0 {
		return -1
	}
	cx, cy := int(fx), int(fy)
	if cx >= g.nx || cy >= g.ny {
		return -1
	}
	return cy*g.nx + cx
}

// cellAt returns the cell containing (x, y), or nil when the point lies
// outside the gridded obstacle footprint (no obstacle can be there).
func (ix *spatialIndex) cellAt(x, y float64) *indexCell {
	ci := ix.cellIndexAt(x, y)
	if ci < 0 {
		return nil
	}
	return &ix.cells[ci]
}

// cellRange returns the clamped cell rectangle overlapping the query AABB,
// ok=false when the query lies entirely outside the grid.
func (g *gridGeom) cellRange(x0, y0, x1, y1 float64) (cx0, cy0, cx1, cy1 int, ok bool) {
	if g.nx == 0 {
		return 0, 0, 0, 0, false
	}
	if x1 < g.minX || y1 < g.minY ||
		x0 > g.minX+float64(g.nx)*g.cell || y0 > g.minY+float64(g.ny)*g.cell {
		return 0, 0, 0, 0, false
	}
	cx0, cy0 = g.cellCoord(x0, y0)
	cx1, cy1 = g.cellCoord(x1, y1)
	return cx0, cy0, cx1, cy1, true
}

// rayWalk is an Amanatides & Woo grid traversal over the XY projection of a
// ray, visiting every cell the segment [0, tmax] crosses in near-to-far
// order. It is a value-type iterator (no closures) so the sensor hot paths
// stay allocation-free. The walk yields linear cell indices into the
// owner's cell storage, so the static index and the dynamic overlay share
// it unchanged.
type rayWalk struct {
	g        *gridGeom
	cx, cy   int
	stepX    int
	stepY    int
	tMaxX    float64 // t at which the ray crosses the next X cell boundary
	tMaxY    float64
	tDeltaX  float64
	tDeltaY  float64
	tEnd     float64 // exit parameter (grid exit or tmax, whichever first)
	tCur     float64 // entry parameter of the current cell
	finished bool
}

// startWalk clips the ray against the grid rectangle and positions the walk
// at the first overlapped cell. ok=false when the segment misses the grid.
func (g *gridGeom) startWalk(ray geom.Ray, tmax float64) (rayWalk, bool) {
	var wk rayWalk
	if g.nx == 0 {
		return wk, false
	}
	ox, oy := ray.Origin.X, ray.Origin.Y
	dx, dy := ray.Dir.X, ray.Dir.Y
	gx1 := g.minX + float64(g.nx)*g.cell
	gy1 := g.minY + float64(g.ny)*g.cell

	// 2-D slab clip of [0, tmax] against the grid rectangle.
	t0, t1 := 0.0, tmax
	clip := func(o, d, lo, hi float64) bool {
		if math.Abs(d) < 1e-15 {
			return o >= lo && o <= hi
		}
		inv := 1 / d
		ta, tb := (lo-o)*inv, (hi-o)*inv
		if ta > tb {
			ta, tb = tb, ta
		}
		if ta > t0 {
			t0 = ta
		}
		if tb < t1 {
			t1 = tb
		}
		return t0 <= t1
	}
	if !clip(ox, dx, g.minX, gx1) || !clip(oy, dy, g.minY, gy1) {
		return wk, false
	}

	// Start just inside the grid; the pad on registration absorbs the nudge.
	px := ox + dx*t0
	py := oy + dy*t0
	cx, cy := g.cellCoord(px, py)

	wk.g = g
	wk.cx, wk.cy = cx, cy
	wk.tEnd = t1
	wk.tCur = t0
	inf := math.Inf(1)
	if dx > 1e-15 {
		wk.stepX = 1
		wk.tMaxX = (g.minX + float64(cx+1)*g.cell - ox) / dx
		wk.tDeltaX = g.cell / dx
	} else if dx < -1e-15 {
		wk.stepX = -1
		wk.tMaxX = (g.minX + float64(cx)*g.cell - ox) / dx
		wk.tDeltaX = -g.cell / dx
	} else {
		wk.tMaxX, wk.tDeltaX = inf, inf
	}
	if dy > 1e-15 {
		wk.stepY = 1
		wk.tMaxY = (g.minY + float64(cy+1)*g.cell - oy) / dy
		wk.tDeltaY = g.cell / dy
	} else if dy < -1e-15 {
		wk.stepY = -1
		wk.tMaxY = (g.minY + float64(cy)*g.cell - oy) / dy
		wk.tDeltaY = -g.cell / dy
	} else {
		wk.tMaxY, wk.tDeltaY = inf, inf
	}
	return wk, true
}

// next returns the current cell's linear index and its entry parameter,
// then advances. ok=false once the walk has left the grid or passed tmax.
func (wk *rayWalk) next() (ci int, tEntry float64, ok bool) {
	if wk.finished || wk.g == nil {
		return 0, 0, false
	}
	ci = wk.cy*wk.g.nx + wk.cx
	tEntry = wk.tCur

	// Advance to the neighbor cell across the nearer boundary.
	if wk.tMaxX < wk.tMaxY {
		wk.tCur = wk.tMaxX
		wk.tMaxX += wk.tDeltaX
		wk.cx += wk.stepX
		if wk.cx < 0 || wk.cx >= wk.g.nx {
			wk.finished = true
		}
	} else {
		wk.tCur = wk.tMaxY
		wk.tMaxY += wk.tDeltaY
		wk.cy += wk.stepY
		if wk.cy < 0 || wk.cy >= wk.g.ny {
			wk.finished = true
		}
	}
	if wk.tCur > wk.tEnd {
		wk.finished = true
	}
	return ci, tEntry, true
}

// raycastObstacles returns the minimum obstacle intersection parameter
// along ray within tmax, starting from best (typically the ground hit).
// Candidates may be visited more than once when an obstacle spans several
// cells; duplicates cannot change a minimum, so no deduplication is needed.
// Cells whose entry parameter already exceeds the best hit are skipped
// (any intersection inside them is farther than best).
func (ix *spatialIndex) raycastObstacles(w *World, ray geom.Ray, tmax, best float64) float64 {
	wk, ok := ix.startWalk(ray, tmax)
	if !ok {
		return best
	}
	for {
		ci, tEntry, ok := wk.next()
		if !ok || tEntry > best {
			break
		}
		c := &ix.cells[ci]
		for _, bi := range c.buildings {
			if tb, hit := ray.IntersectAABB(w.Buildings[bi], tmax); hit && tb < best {
				best = tb
			}
		}
		for _, ti := range c.trees {
			if tt, hit := w.Trees[ti].IntersectRay(ray, tmax); hit && tt < best {
				best = tt
			}
		}
	}
	return best
}
