package sim

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/vision"
)

func testWorld() *World {
	dict := vision.DefaultDictionary()
	return &World{
		Bounds: geom.NewAABB(geom.V3(-80, -80, 0), geom.V3(80, 80, 50)),
		Buildings: []geom.AABB{
			geom.NewAABB(geom.V3(20, -5, 0), geom.V3(30, 5, 15)),
		},
		Trees: []geom.Cylinder{
			{Center: geom.V2(-10, 10), Radius: 2.5, BaseZ: 0, TopZ: 9},
		},
		Water: []geom.AABB{
			geom.NewAABB(geom.V3(-40, -40, 0), geom.V3(-30, -30, 0.5)),
		},
		Markers: []vision.MarkerInstance{{
			Marker: dict.Markers[0],
			Center: geom.V3(50, 0, 0),
			Size:   2,
		}},
		GroundSeed:     7,
		GroundBase:     0.45,
		GroundContrast: 0.25,
	}
}

func TestCollideSphere(t *testing.T) {
	w := testWorld()
	if !w.CollideSphere(geom.V3(25, 0, 10), 0.35) {
		t.Error("inside building not colliding")
	}
	if !w.CollideSphere(geom.V3(19.8, 0, 10), 0.35) {
		t.Error("touching building wall not colliding")
	}
	if w.CollideSphere(geom.V3(25, 0, 16), 0.35) {
		t.Error("above building colliding")
	}
	if !w.CollideSphere(geom.V3(-10, 10, 5), 0.35) {
		t.Error("tree trunk not colliding")
	}
	if !w.CollideSphere(geom.V3(0, 0, 0.2), 0.35) {
		t.Error("ground not colliding")
	}
	if w.CollideSphere(geom.V3(0, 0, 10), 0.35) {
		t.Error("open air colliding")
	}
}

func TestWorldRaycast(t *testing.T) {
	w := testWorld()
	// Horizontal ray into the building.
	tHit, hit := w.Raycast(geom.Ray{Origin: geom.V3(0, 0, 5), Dir: geom.V3(1, 0, 0)}, 100)
	if !hit || math.Abs(tHit-20) > 1e-9 {
		t.Errorf("building hit t=%v hit=%v", tHit, hit)
	}
	// Downward ray hits the ground.
	tHit, hit = w.Raycast(geom.Ray{Origin: geom.V3(0, 0, 8), Dir: geom.V3(0, 0, -1)}, 100)
	if !hit || math.Abs(tHit-8) > 1e-9 {
		t.Errorf("ground hit t=%v hit=%v", tHit, hit)
	}
	// Upward ray misses.
	if _, hit := w.Raycast(geom.Ray{Origin: geom.V3(0, 0, 8), Dir: geom.V3(0, 0, 1)}, 100); hit {
		t.Error("upward ray hit something")
	}
}

func TestGroundHeightAndWater(t *testing.T) {
	w := testWorld()
	if h := w.GroundHeightAt(25, 0); h != 15 {
		t.Errorf("roof height %v", h)
	}
	if h := w.GroundHeightAt(-10, 10); h != 9 {
		t.Errorf("canopy height %v", h)
	}
	if h := w.GroundHeightAt(0, 0); h != 0 {
		t.Errorf("open ground height %v", h)
	}
	if !w.OnWater(-35, -35) {
		t.Error("water not detected")
	}
	if w.OnWater(0, 0) {
		t.Error("dry ground reported wet")
	}
}

func TestFreeGroundPosition(t *testing.T) {
	w := testWorld()
	if !w.FreeGroundPosition(0, 0, 3) {
		t.Error("origin should be free")
	}
	if w.FreeGroundPosition(25, 0, 3) {
		t.Error("under building should not be free")
	}
	if w.FreeGroundPosition(22, 7, 3) {
		t.Error("too close to building should not be free")
	}
	if w.FreeGroundPosition(-35, -35, 3) {
		t.Error("water should not be free")
	}
	if w.FreeGroundPosition(500, 0, 3) {
		t.Error("out of bounds should not be free")
	}
}

func TestTargetMarker(t *testing.T) {
	w := testWorld()
	m, ok := w.TargetMarker()
	if !ok || m.Center != geom.V3(50, 0, 0) {
		t.Errorf("target marker %v ok=%v", m.Center, ok)
	}
	var empty World
	if _, ok := empty.TargetMarker(); ok {
		t.Error("empty world has target")
	}
}

func TestDroneDynamicsConvergeToCommand(t *testing.T) {
	d := NewDrone(DefaultDroneConfig(), geom.V3(0, 0, 10))
	cmd := geom.V3(3, 0, 0)
	for i := 0; i < 200; i++ {
		d.Step(0.05, cmd, geom.Vec3{})
	}
	if math.Abs(d.Vel.X-3) > 0.1 || math.Abs(d.Vel.Y) > 0.05 {
		t.Errorf("velocity %v, want ~(3,0,0)", d.Vel)
	}
}

func TestDroneSpeedClamp(t *testing.T) {
	d := NewDrone(DefaultDroneConfig(), geom.V3(0, 0, 10))
	for i := 0; i < 400; i++ {
		d.Step(0.05, geom.V3(100, 0, 0), geom.Vec3{})
	}
	if d.Speed() > d.Cfg.MaxSpeed*1.05 {
		t.Errorf("speed %v exceeds envelope", d.Speed())
	}
}

func TestDroneWindDisturbance(t *testing.T) {
	calm := NewDrone(DefaultDroneConfig(), geom.V3(0, 0, 10))
	windy := NewDrone(DefaultDroneConfig(), geom.V3(0, 0, 10))
	wind := geom.V3(0, 4, 0)
	for i := 0; i < 200; i++ {
		calm.Step(0.05, geom.V3(2, 0, 0), geom.Vec3{})
		windy.Step(0.05, geom.V3(2, 0, 0), wind)
	}
	if windy.Pos.Y <= calm.Pos.Y+0.5 {
		t.Errorf("wind had no effect: calm y=%v windy y=%v", calm.Pos.Y, windy.Pos.Y)
	}
}

func TestDroneLand(t *testing.T) {
	d := NewDrone(DefaultDroneConfig(), geom.V3(5, 5, 0.3))
	d.Land()
	if !d.Landed() || d.Pos.Z != 0 || d.Vel != (geom.Vec3{}) {
		t.Error("landing state wrong")
	}
	d.Step(0.05, geom.V3(5, 0, 0), geom.Vec3{})
	if d.Pos != geom.V3(5, 5, 0) {
		t.Error("landed drone moved")
	}
}

func TestGPSDriftScalesWithDegradation(t *testing.T) {
	clean := NewGPS(1, 0)
	dirty := NewGPS(1, 1)
	for i := 0; i < 4000; i++ {
		clean.Step(0.05)
		dirty.Step(0.05)
	}
	if dirty.Bias().Len() <= clean.Bias().Len() {
		t.Errorf("degraded GPS drift %v not larger than clean %v",
			dirty.Bias().Len(), clean.Bias().Len())
	}
	if clean.Bias().Len() > 1.0 {
		t.Errorf("clean GPS drifted %v m", clean.Bias().Len())
	}
	if dirty.Bias().Len() > 6 {
		t.Errorf("degraded GPS drift %v unbounded", dirty.Bias().Len())
	}
}

func TestGPSReadCentersOnTruthPlusBias(t *testing.T) {
	g := NewGPS(3, 0.5)
	for i := 0; i < 1000; i++ {
		g.Step(0.05)
	}
	truth := geom.V3(10, 20, 12)
	var sum geom.Vec3
	const n = 500
	for i := 0; i < n; i++ {
		sum = sum.Add(g.Read(truth))
	}
	mean := sum.Scale(1.0 / n)
	want := truth.Add(g.Bias())
	if mean.HorizDist(want) > 0.2 {
		t.Errorf("mean fix %v, want %v", mean, want)
	}
}

func TestLidarAltRangeLimit(t *testing.T) {
	w := testWorld()
	l := NewLidarAlt(2)
	if _, ok := l.Read(w, geom.V3(0, 0, 20)); ok {
		t.Error("beyond max range should fail")
	}
	r, ok := l.Read(w, geom.V3(0, 0, 8))
	if !ok || math.Abs(r-8) > 0.3 {
		t.Errorf("range %v ok=%v, want ~8", r, ok)
	}
	// Over the roof: range is to the roof, not the ground.
	r, ok = l.Read(w, geom.V3(25, 0, 20))
	if !ok || math.Abs(r-5) > 0.3 {
		t.Errorf("roof range %v ok=%v, want ~5", r, ok)
	}
}

func TestBaroDriftBounded(t *testing.T) {
	b := NewBaro(4)
	for i := 0; i < 20000; i++ {
		b.Step(0.05)
	}
	if math.Abs(b.offset) > 1.5 {
		t.Errorf("baro offset %v outside clamp", b.offset)
	}
}

func TestDepthCameraSeesBuilding(t *testing.T) {
	w := testWorld()
	d := NewDepthCamera(5)
	// Facing +x from 10m short of the building at its mid-height.
	returns := d.Capture(w, geom.V3(12, 0, 7), 0)
	hits := 0
	for _, r := range returns {
		if r.Hit && r.Point.X > 6 && r.Point.X < 10 && math.Abs(r.Point.Y) < 4 {
			hits++
		}
	}
	if hits < 5 {
		t.Errorf("building hits = %d, want several", hits)
	}
}

func TestDepthCameraMaxRangeMisses(t *testing.T) {
	w := &World{Bounds: geom.NewAABB(geom.V3(-100, -100, 0), geom.V3(100, 100, 50))}
	d := NewDepthCamera(6)
	returns := d.Capture(w, geom.V3(0, 0, 30), 0)
	for _, r := range returns {
		if r.Hit {
			t.Fatalf("hit in empty world: %+v", r)
		}
		if math.Abs(r.Point.Len()-d.MaxRange) > 1e-6 {
			t.Fatalf("miss return not at max range: %v", r.Point.Len())
		}
	}
}

func TestDepthCameraSoftCanopy(t *testing.T) {
	// Rays into the canopy edge should sometimes pass through; rays into
	// the core should reliably hit.
	w := &World{
		Bounds: geom.NewAABB(geom.V3(-50, -50, 0), geom.V3(50, 50, 50)),
		Trees:  []geom.Cylinder{{Center: geom.V2(6, 0), Radius: 3, BaseZ: 0, TopZ: 20}},
	}
	d := NewDepthCamera(7)
	coreHits, edgePasses := 0, 0
	for trial := 0; trial < 30; trial++ {
		returns := d.Capture(w, geom.V3(0, 0, 10), 0)
		for _, r := range returns {
			if !r.Hit {
				continue
			}
			// Core: near the trunk axis.
			if math.Abs(r.Point.Y) < 1 && r.Point.X < 5 {
				coreHits++
			}
		}
		// Count rays that reached past the far side of the canopy.
		for _, r := range returns {
			if !r.Hit && math.Abs(r.Point.Y) > 2 {
				edgePasses++
			}
		}
	}
	if coreHits == 0 {
		t.Error("no core hits on tree")
	}
	if edgePasses == 0 {
		t.Error("no soft-canopy pass-throughs")
	}
}

func TestDepthCameraErroneousInjection(t *testing.T) {
	w := &World{Bounds: geom.NewAABB(geom.V3(-50, -50, 0), geom.V3(50, 50, 50))}
	d := NewDepthCamera(8)
	d.ErroneousRate = 1 // always inject
	returns := d.Capture(w, geom.V3(0, 0, 30), 0)
	spurious := 0
	for _, r := range returns {
		if r.Hit {
			spurious++
		}
	}
	if spurious < 3 {
		t.Errorf("spurious returns = %d, want a cluster", spurious)
	}
}

func TestColorCameraSeesMarker(t *testing.T) {
	w := testWorld()
	c := NewColorCamera(9)
	im := c.Capture(w, Weather{}, geom.V3(50, 0, 10), 0, 0)
	// The pad renders a white quiet zone (~0.93m from center -> ~13px
	// right of image center) and a black border ring (~0.75m -> ~10px).
	quiet := im.Region(75, 62, 78, 65)
	border := im.Region(73, 63, 74, 64)
	if quiet < 0.85 {
		t.Errorf("quiet zone %v, want near-white", quiet)
	}
	if border > 0.3 {
		t.Errorf("border %v, want near-black", border)
	}
}

func TestColorCameraWeatherDegrades(t *testing.T) {
	w := testWorld()
	clearCam := NewColorCamera(10)
	fogCam := NewColorCamera(10)
	clear := clearCam.Capture(w, Weather{}, geom.V3(50, 0, 12), 0, 0)
	foggy := fogCam.Capture(w, Weather{Fog: 0.8}, geom.V3(50, 0, 12), 0, 0)
	_, sClear := clear.MeanStd()
	_, sFog := foggy.MeanStd()
	if sFog >= sClear {
		t.Errorf("fog did not reduce contrast: %v vs %v", sFog, sClear)
	}
}

func TestWeatherAdverseClassification(t *testing.T) {
	if (Weather{}).Adverse() {
		t.Error("calm weather classified adverse")
	}
	for _, w := range []Weather{
		{Fog: 0.6}, {Rain: 0.5}, {DuskDim: 0.6}, {GustStd: 2}, {GPSDegradation: 0.8},
	} {
		if !w.Adverse() {
			t.Errorf("weather %+v not classified adverse", w)
		}
	}
}

func TestWeatherFrameConditionsReproducible(t *testing.T) {
	w := Weather{Fog: 0.4, GlareProb: 1, ShadowProb: 1}
	a := w.FrameConditions(rand.New(rand.NewSource(5)), 2)
	b := w.FrameConditions(rand.New(rand.NewSource(5)), 2)
	if a != b {
		t.Error("conditions not reproducible with same seed")
	}
	if a.Glare == 0 {
		t.Error("glare prob 1 produced no glare")
	}
}

func TestWeatherMotionBlurFromSpeed(t *testing.T) {
	w := Weather{}
	rng := rand.New(rand.NewSource(1))
	slow := w.FrameConditions(rng, 1)
	fast := w.FrameConditions(rng, 7)
	if slow.MotionBlur != 0 {
		t.Errorf("slow blur = %v", slow.MotionBlur)
	}
	if fast.MotionBlur <= 0 {
		t.Errorf("fast blur = %v", fast.MotionBlur)
	}
}

func TestGustStatistics(t *testing.T) {
	w := Weather{Wind: geom.V3(2, 0, 0), GustStd: 1}
	rng := rand.New(rand.NewSource(2))
	var sum geom.Vec3
	const n = 2000
	for i := 0; i < n; i++ {
		sum = sum.Add(w.GustAt(rng))
	}
	mean := sum.Scale(1.0 / n)
	if math.Abs(mean.X-2) > 0.15 || math.Abs(mean.Y) > 0.15 {
		t.Errorf("gust mean %v, want ~(2,0,0)", mean)
	}
	calm := Weather{Wind: geom.V3(1, 1, 0)}
	if calm.GustAt(rng) != calm.Wind {
		t.Error("no-gust weather should return mean wind")
	}
}

func TestSceneNearFiltersByFootprint(t *testing.T) {
	w := testWorld()
	// Near the marker at (50,0): the building at x 20-30 is ~20m away and
	// must be excluded from a 12m-radius scene; the marker included.
	sc := w.SceneNear(geom.V3(50, 0, 10), 12)
	if len(sc.Markers) != 1 {
		t.Errorf("markers in scene = %d, want 1", len(sc.Markers))
	}
	if _, _, blocked := sc.OccluderAt(25, 0); blocked {
		t.Error("distant building leaked into the filtered scene")
	}
	// Near the building, it must be present.
	sc2 := w.SceneNear(geom.V3(25, 0, 20), 12)
	if _, _, blocked := sc2.OccluderAt(25, 0); !blocked {
		t.Error("nearby building missing from filtered scene")
	}
	if len(sc2.Markers) != 0 {
		t.Error("distant marker leaked into filtered scene")
	}
}

func TestSceneNearRenderMatchesFullScene(t *testing.T) {
	w := testWorld()
	cam := vision.DefaultCamera()
	cam.Pos = geom.V3(50, 0, 10)
	full := w.Scene().Render(cam)
	radius := cam.GroundFootprint(10)*0.75 + 3
	near := w.SceneNear(cam.Pos, radius).Render(cam)
	for i := range full.Pix {
		if full.Pix[i] != near.Pix[i] {
			t.Fatalf("pixel %d differs: %v vs %v", i, full.Pix[i], near.Pix[i])
		}
	}
}

func TestGPSRTKMode(t *testing.T) {
	g := NewGPS(5, 1.0)
	g.EnableRTK()
	for i := 0; i < 2000; i++ {
		g.Step(0.05)
	}
	if g.Bias().Len() != 0 {
		t.Errorf("RTK bias = %v, want zero", g.Bias().Len())
	}
	fix := g.Read(geom.V3(10, 10, 5))
	if fix.HorizDist(geom.V3(10, 10, 0)) > 0.15 {
		t.Errorf("RTK fix error %v", fix.HorizDist(geom.V3(10, 10, 0)))
	}
}

// TestGPSFaultBias: an injected receiver bias offsets Read and is visible
// through Bias (so drift metrics see it), and clearing it restores the
// nominal paths exactly.
func TestGPSFaultBias(t *testing.T) {
	g := NewGPS(3, 0)
	g.NoiseStd = 0 // isolate the bias
	truth := geom.V3(10, 20, 30)
	if got := g.Read(truth); got != truth {
		t.Fatalf("calm receiver reads %v, want truth %v", got, truth)
	}
	fb := geom.V3(4, -2, 0)
	g.SetFaultBias(fb)
	if got := g.Read(truth); got != truth.Add(fb) {
		t.Errorf("faulted read %v, want %v", got, truth.Add(fb))
	}
	if got := g.Bias(); got != fb {
		t.Errorf("Bias() = %v, want injected %v", got, fb)
	}
	g.SetFaultBias(geom.Vec3{})
	if got := g.Read(truth); got != truth {
		t.Errorf("cleared fault bias still offsets reads: %v", got)
	}
	if got := g.Bias(); got != (geom.Vec3{}) {
		t.Errorf("cleared Bias() = %v", got)
	}
}

// TestDroneThrustFault: a degraded thrust factor scales the achievable
// velocity; out-of-range factors reset to nominal.
func TestDroneThrustFault(t *testing.T) {
	fly := func(thrust float64) float64 {
		d := NewDrone(DefaultDroneConfig(), geom.V3(0, 0, 10))
		d.SetThrust(thrust)
		for i := 0; i < 200; i++ {
			d.Step(0.05, geom.V3(5, 0, 0), geom.Vec3{})
		}
		return d.Vel.X
	}
	full := fly(1)
	half := fly(0.5)
	if half >= full*0.7 {
		t.Errorf("thrust 0.5 converged to %v, nominal %v — no degradation", half, full)
	}
	if got := fly(0); got != full {
		t.Errorf("invalid thrust 0 not reset to nominal: %v vs %v", got, full)
	}
	if got := fly(7); got != full {
		t.Errorf("invalid thrust 7 not reset to nominal: %v vs %v", got, full)
	}
}
