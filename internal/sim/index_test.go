package sim

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

// randomWorld builds an obstacle-dense world for equivalence testing.
func randomWorld(seed int64) *World {
	rng := rand.New(rand.NewSource(seed))
	w := &World{
		Bounds:         geom.NewAABB(geom.V3(-90, -90, 0), geom.V3(90, 90, 45)),
		GroundSeed:     seed,
		GroundBase:     0.45,
		GroundContrast: 0.25,
	}
	for i := 0; i < 30; i++ {
		x := (rng.Float64() - 0.5) * 150
		y := (rng.Float64() - 0.5) * 150
		w.Buildings = append(w.Buildings, geom.NewAABB(
			geom.V3(x, y, 0),
			geom.V3(x+4+rng.Float64()*20, y+4+rng.Float64()*20, 4+rng.Float64()*25)))
	}
	for i := 0; i < 120; i++ {
		w.Trees = append(w.Trees, geom.Cylinder{
			Center: geom.V2((rng.Float64()-0.5)*170, (rng.Float64()-0.5)*170),
			Radius: 1 + rng.Float64()*3,
			TopZ:   5 + rng.Float64()*12,
		})
	}
	for i := 0; i < 3; i++ {
		x := (rng.Float64() - 0.5) * 120
		y := (rng.Float64() - 0.5) * 120
		w.Water = append(w.Water, geom.NewAABB(
			geom.V3(x, y, 0), geom.V3(x+10+rng.Float64()*15, y+10+rng.Float64()*15, 0.3)))
	}
	return w
}

// TestIndexQueriesMatchLinear proves every query routed through the
// spatial index returns bit-identical results to the linear reference.
func TestIndexQueriesMatchLinear(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		w := randomWorld(seed)
		w.BuildIndex()
		naive := randomWorld(seed) // identical geometry, no index
		if naive.Indexed() {
			t.Fatal("naive world unexpectedly indexed")
		}

		rng := rand.New(rand.NewSource(seed + 1000))
		for q := 0; q < 2000; q++ {
			x := (rng.Float64() - 0.5) * 220
			y := (rng.Float64() - 0.5) * 220
			z := rng.Float64() * 40
			p := geom.V3(x, y, z)

			if a, b := w.GroundHeightAt(x, y), naive.GroundHeightAt(x, y); a != b {
				t.Fatalf("seed %d: GroundHeightAt(%v,%v) = %v (indexed) vs %v (linear)", seed, x, y, a, b)
			}
			r := 0.2 + rng.Float64()*4
			if a, b := w.HitObstacle(p, r), naive.HitObstacle(p, r); a != b {
				t.Fatalf("seed %d: HitObstacle(%v,%v) = %v vs %v", seed, p, r, a, b)
			}
			if a, b := w.CollideSphere(p, r), naive.CollideSphere(p, r); a != b {
				t.Fatalf("seed %d: CollideSphere mismatch at %v", seed, p)
			}
			if a, b := w.FreeGroundPosition(x, y, r), naive.FreeGroundPosition(x, y, r); a != b {
				t.Fatalf("seed %d: FreeGroundPosition mismatch at (%v,%v)", seed, x, y)
			}
			a1, a2, a3 := w.OccluderAt(x, y)
			b1, b2, b3 := naive.OccluderAt(x, y)
			if a1 != b1 || a2 != b2 || a3 != b3 {
				t.Fatalf("seed %d: OccluderAt mismatch at (%v,%v)", seed, x, y)
			}

			dir := geom.V3(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64())
			if dir.Len() < 1e-9 {
				continue
			}
			ray := geom.Ray{Origin: p, Dir: dir.Norm()}
			tmax := rng.Float64() * 60
			ta, hita := w.Raycast(ray, tmax)
			tb, hitb := naive.Raycast(ray, tmax)
			if hita != hitb || ta != tb {
				t.Fatalf("seed %d: Raycast(%v) = (%v,%v) vs (%v,%v)", seed, ray, ta, hita, tb, hitb)
			}
		}
	}
}

// TestDepthCaptureMatchesLinear proves the indexed soft raycast consumes
// the RNG stream exactly like the linear reference: identical captures,
// return for return, across poses and worlds.
func TestDepthCaptureMatchesLinear(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		w := randomWorld(seed)
		w.BuildIndex()
		naive := randomWorld(seed)

		dIdx := NewDepthCamera(seed * 31)
		dLin := NewDepthCamera(seed * 31)
		rng := rand.New(rand.NewSource(seed))
		for frame := 0; frame < 60; frame++ {
			pos := geom.V3((rng.Float64()-0.5)*160, (rng.Float64()-0.5)*160, 1+rng.Float64()*30)
			yaw := rng.Float64() * 2 * math.Pi
			a := dIdx.Capture(w, pos, yaw)
			b := dLin.Capture(naive, pos, yaw)
			if len(a) != len(b) {
				t.Fatalf("seed %d frame %d: %d vs %d returns", seed, frame, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("seed %d frame %d return %d: %+v vs %+v", seed, frame, i, a[i], b[i])
				}
			}
		}
	}
}

// TestColorCaptureMatchesLinear proves the reusable capture pipeline
// (filtered sub-world, per-frame index, render buffers, condition scratch)
// produces pixel-identical frames to capturing against an unindexed world.
func TestColorCaptureMatchesLinear(t *testing.T) {
	w := randomWorld(7)
	w.BuildIndex()
	naive := randomWorld(7)
	weather := Weather{Fog: 0.3, GlareProb: 0.5, ShadowProb: 0.5, Rain: 0.4, DuskDim: 0.2}

	cIdx := NewColorCamera(99)
	cLin := NewColorCamera(99)
	rng := rand.New(rand.NewSource(3))
	for frame := 0; frame < 25; frame++ {
		pos := geom.V3((rng.Float64()-0.5)*120, (rng.Float64()-0.5)*120, 3+rng.Float64()*22)
		yaw := rng.Float64() * 2 * math.Pi
		speed := rng.Float64() * 7
		a := cIdx.Capture(w, weather, pos, yaw, speed)
		b := cLin.Capture(naive, weather, pos, yaw, speed)
		if a.W != b.W || a.H != b.H {
			t.Fatalf("frame %d: size mismatch", frame)
		}
		for i := range a.Pix {
			if a.Pix[i] != b.Pix[i] {
				t.Fatalf("frame %d: pixel %d = %v vs %v", frame, i, a.Pix[i], b.Pix[i])
			}
		}
	}
}

// TestCaptureAllocFree asserts the steady-state sensor capture paths stay
// allocation-free — the zero-alloc contract of the performance layer.
func TestCaptureAllocFree(t *testing.T) {
	w := randomWorld(11)
	w.BuildIndex()
	weather := Weather{Fog: 0.3, ShadowProb: 0.4}

	color := NewColorCamera(5)
	depth := NewDepthCamera(6)
	pos := geom.V3(10, 5, 12)
	// Warm up buffers.
	color.Capture(w, weather, pos, 0.3, 4.5)
	depth.Capture(w, pos, 0.3)

	if n := testing.AllocsPerRun(50, func() {
		color.Capture(w, weather, pos, 0.3, 4.5)
	}); n > 0 {
		t.Errorf("ColorCamera.Capture allocates %.1f/op in steady state, want 0", n)
	}
	if n := testing.AllocsPerRun(50, func() {
		depth.Capture(w, pos, 0.3)
	}); n > 0 {
		t.Errorf("DepthCamera.Capture allocates %.1f/op in steady state, want 0", n)
	}
}

// TestSceneNearIndexedMatchesLinear checks footprint filtering finds the
// same obstacle set with and without the index.
func TestSceneNearIndexedMatchesLinear(t *testing.T) {
	w := randomWorld(3)
	w.BuildIndex()
	naive := randomWorld(3)
	rng := rand.New(rand.NewSource(17))
	for q := 0; q < 50; q++ {
		center := geom.V3((rng.Float64()-0.5)*160, (rng.Float64()-0.5)*160, 10)
		radius := 5 + rng.Float64()*20
		var a, b World
		w.sceneNearInto(center, radius, &a)
		naive.sceneNearInto(center, radius, &b)
		if len(a.Buildings) != len(b.Buildings) || len(a.Trees) != len(b.Trees) ||
			len(a.Water) != len(b.Water) || len(a.Markers) != len(b.Markers) {
			t.Fatalf("footprint filter mismatch at %v r=%v: %d/%d/%d vs %d/%d/%d",
				center, radius, len(a.Buildings), len(a.Trees), len(a.Water),
				len(b.Buildings), len(b.Trees), len(b.Water))
		}
	}
}
