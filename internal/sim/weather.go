package sim

import (
	"math/rand"

	"repro/internal/geom"
	"repro/internal/vision"
)

// Weather is the per-scenario environmental state. Zero value = calm and
// clear. The SIL benchmark splits scenarios evenly between normal and
// adverse weather (paper §IV-B).
type Weather struct {
	// Wind is the mean wind vector in m/s; GustStd adds zero-mean gusts.
	Wind    geom.Vec3
	GustStd float64

	// Fog, Rain in [0,1] set the optical degradations.
	Fog  float64
	Rain float64
	// GlareProb is the per-frame probability of a sun-glare blob.
	GlareProb float64
	// ShadowProb is the per-frame probability of a hard shadow/occluder
	// crossing the frame.
	ShadowProb float64
	// DuskDim in [0,1] lowers brightness and contrast (overcast/dusk).
	DuskDim float64

	// GPSDegradation in [0,1] scales GPS drift — the paper observed
	// position drift during poor weather despite healthy DOP values.
	GPSDegradation float64
}

// Adverse reports whether this weather counts as an adverse-condition
// scenario for the benchmark split.
func (w Weather) Adverse() bool {
	return w.Fog > 0.25 || w.Rain > 0.25 || w.DuskDim > 0.3 ||
		w.GustStd > 1.2 || w.GPSDegradation > 0.3 || w.GlareProb > 0.25
}

// FrameConditions samples the photometric conditions for one camera frame.
// Stochastic elements (glare placement, occluder position) use rng so runs
// are reproducible.
func (w Weather) FrameConditions(rng *rand.Rand, speed float64) vision.Conditions {
	c := vision.Conditions{
		Fog:       w.Fog,
		RainNoise: w.Rain * 0.07,
	}
	if w.DuskDim > 0 {
		c.Brightness = -0.25 * w.DuskDim
		c.Contrast = 1 - 0.45*w.DuskDim
	}
	if w.GlareProb > 0 && rng.Float64() < w.GlareProb {
		c.Glare = 0.5 + 0.5*rng.Float64()
		c.GlareU = 0.25 + 0.5*rng.Float64()
		c.GlareV = 0.25 + 0.5*rng.Float64()
	}
	if w.ShadowProb > 0 && rng.Float64() < w.ShadowProb {
		if rng.Float64() < 0.5 {
			c.Shadow = 0.4 + 0.4*rng.Float64()
			c.ShadowPos = rng.Float64()
		} else {
			c.Occlusion = 0.7 + 0.3*rng.Float64()
			c.OccU = 0.3 + 0.4*rng.Float64()
			c.OccV = 0.3 + 0.4*rng.Float64()
			c.OccR = 0.04 + 0.05*rng.Float64()
		}
	}
	// Motion blur grows with ground speed (rolling-shutter smear).
	if speed > 3 {
		c.MotionBlur = (speed - 3) * 0.8
	}
	return c
}

// GustAt samples the instantaneous wind vector.
func (w Weather) GustAt(rng *rand.Rand) geom.Vec3 {
	if w.GustStd == 0 {
		return w.Wind
	}
	return w.Wind.Add(geom.V3(
		rng.NormFloat64()*w.GustStd,
		rng.NormFloat64()*w.GustStd,
		rng.NormFloat64()*w.GustStd*0.3,
	))
}
