package sim

import (
	"repro/internal/geom"
)

// DroneConfig is the physical envelope of the F450-class quadrotor the
// paper flies.
type DroneConfig struct {
	// Radius is the collision sphere radius in meters (prop tips).
	Radius float64
	// MaxSpeed and MaxAccel bound the velocity controller's authority.
	MaxSpeed, MaxAccel float64
	// Tau is the first-order velocity-response time constant: stick
	// command to achieved velocity. This lag is what makes the vehicle
	// overshoot sharp trajectory corners.
	Tau float64
}

// DefaultDroneConfig returns an F450-with-payload envelope.
func DefaultDroneConfig() DroneConfig {
	return DroneConfig{
		Radius:   0.35,
		MaxSpeed: 7,
		MaxAccel: 4,
		Tau:      0.55,
	}
}

// Drone integrates simplified quadrotor translational dynamics: a velocity
// command tracked through a first-order lag with acceleration limits, plus
// wind advection. Attitude is abstracted to yaw (multirotor near-hover).
type Drone struct {
	Cfg DroneConfig

	Pos geom.Vec3
	Vel geom.Vec3
	Yaw float64

	landed bool
	// thrust scales the achieved velocity authority (1 = nominal). The
	// fault-injection subsystem degrades it to model partial power loss;
	// Step branches on it so the nominal path stays bit-identical.
	thrust float64
}

// NewDrone places a drone at pos.
func NewDrone(cfg DroneConfig, pos geom.Vec3) *Drone {
	if cfg.Radius <= 0 {
		cfg.Radius = 0.35
	}
	if cfg.MaxSpeed <= 0 {
		cfg.MaxSpeed = 7
	}
	if cfg.MaxAccel <= 0 {
		cfg.MaxAccel = 4
	}
	if cfg.Tau <= 0 {
		cfg.Tau = 0.55
	}
	return &Drone{Cfg: cfg, Pos: pos, thrust: 1}
}

// SetThrust sets the velocity-authority factor in (0, 1]; 1 restores
// nominal performance (the actuator tap of the fault subsystem).
func (d *Drone) SetThrust(f float64) {
	if f <= 0 || f > 1 {
		f = 1
	}
	d.thrust = f
}

// Step advances the dynamics by dt seconds under the given velocity
// command and wind. Commands are clamped to the speed envelope.
func (d *Drone) Step(dt float64, cmd geom.Vec3, wind geom.Vec3) {
	if d.landed {
		return
	}
	cmd = cmd.ClampLen(d.Cfg.MaxSpeed)
	if d.thrust != 1 {
		cmd = cmd.Scale(d.thrust)
	}
	// Air-relative first-order velocity tracking; wind advects the frame.
	target := cmd.Add(wind.Scale(0.35)) // partial wind rejection by attitude controller
	acc := target.Sub(d.Vel).Scale(1 / d.Cfg.Tau).ClampLen(d.Cfg.MaxAccel)
	d.Vel = d.Vel.Add(acc.Scale(dt))
	d.Pos = d.Pos.Add(d.Vel.Scale(dt))
	if d.Pos.Z < 0 {
		d.Pos.Z = 0
	}
}

// SetYaw orients the vehicle (sensor mounts follow).
func (d *Drone) SetYaw(yaw float64) { d.Yaw = geom.WrapAngle(yaw) }

// Land freezes the vehicle on the ground at its current position.
func (d *Drone) Land() {
	d.landed = true
	d.Vel = geom.Vec3{}
	d.Pos.Z = 0
}

// Landed reports whether Land was called.
func (d *Drone) Landed() bool { return d.landed }

// Speed returns the current ground speed.
func (d *Drone) Speed() float64 { return d.Vel.Len() }
