package sim

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

// randomOverlays builds a gridded overlay and its linear oracle from the
// same randomized drone placement: identical sphere sets, one with the
// uniform grid and one scanning the list (DropGrid).
func randomOverlays(rng *rand.Rand, n int) (grid, linear *Overlay) {
	grid, linear = NewOverlay(), NewOverlay()
	linear.DropGrid()
	for i := 0; i < n; i++ {
		c := geom.V3((rng.Float64()-0.5)*80, (rng.Float64()-0.5)*80, rng.Float64()*30)
		r := 0.2 + rng.Float64()*0.5
		grid.Add(int32(i), c, r)
		linear.Add(int32(i), c, r)
	}
	grid.Rebuild()
	linear.Rebuild()
	return grid, linear
}

// TestOverlayQueriesMatchLinear proves every gridded overlay query is
// bit-identical to the linear-scan reference over randomized drone
// placements, rebuild after rebuild — the overlay mirror of
// TestIndexQueriesMatchLinear.
func TestOverlayQueriesMatchLinear(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		grid, linear := NewOverlay(), NewOverlay()
		linear.DropGrid()
		for tick := 0; tick < 20; tick++ {
			// Rebuild from scratch each tick, like the lockstep loop.
			grid.Reset()
			linear.Reset()
			n := 1 + rng.Intn(12)
			for i := 0; i < n; i++ {
				c := geom.V3((rng.Float64()-0.5)*80, (rng.Float64()-0.5)*80, rng.Float64()*30)
				r := 0.2 + rng.Float64()*0.5
				grid.Add(int32(i), c, r)
				linear.Add(int32(i), c, r)
			}
			grid.Rebuild()
			linear.Rebuild()
			if grid.Len() != n || linear.Len() != n {
				t.Fatalf("seed %d tick %d: Len = %d/%d, want %d", seed, tick, grid.Len(), linear.Len(), n)
			}

			for q := 0; q < 200; q++ {
				p := geom.V3((rng.Float64()-0.5)*120, (rng.Float64()-0.5)*120, rng.Float64()*40)
				r := 0.2 + rng.Float64()*3
				excl := int32(rng.Intn(n + 2)) // sometimes excludes nothing
				if a, b := grid.Hit(p, r, excl), linear.Hit(p, r, excl); a != b {
					t.Fatalf("seed %d tick %d: Hit(%v,%v,%d) = %v (grid) vs %v (linear)",
						seed, tick, p, r, excl, a, b)
				}

				dir := geom.V3(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64())
				if dir.Len() < 1e-9 {
					continue
				}
				ray := geom.Ray{Origin: p, Dir: dir.Norm()}
				tmax := 5 + rng.Float64()*60
				ta, ha := grid.Raycast(ray, tmax, excl)
				tb, hb := linear.Raycast(ray, tmax, excl)
				if ha != hb || ta != tb {
					t.Fatalf("seed %d tick %d: Raycast(%v) = (%v,%v) grid vs (%v,%v) linear",
						seed, tick, ray, ta, ha, tb, hb)
				}
				// Vertical rays are the lidar path; exercise them explicitly.
				down := geom.Ray{Origin: p, Dir: geom.V3(0, 0, -1)}
				ta, ha = grid.Raycast(down, tmax, excl)
				tb, hb = linear.Raycast(down, tmax, excl)
				if ha != hb || ta != tb {
					t.Fatalf("seed %d tick %d: vertical Raycast mismatch: (%v,%v) vs (%v,%v)",
						seed, tick, ta, ha, tb, hb)
				}
			}
		}
	}
}

// TestOverlaySelfExclusion: a drone never senses its own sphere, with and
// without the grid.
func TestOverlaySelfExclusion(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	grid, linear := randomOverlays(rng, 1)
	for _, ov := range []*Overlay{grid, linear} {
		s := ov.spheres[0]
		if ov.Hit(s.Center, 1, s.ID) {
			t.Fatal("overlay Hit matched the excluded (self) sphere")
		}
		ray := geom.Ray{Origin: s.Center.Add(geom.V3(0, 0, 10)), Dir: geom.V3(0, 0, -1)}
		if _, hit := ov.Raycast(ray, 50, s.ID); hit {
			t.Fatal("overlay Raycast struck the excluded (self) sphere")
		}
		if !ov.Hit(s.Center, 1, s.ID+1) {
			t.Fatal("overlay Hit missed a non-excluded sphere at zero distance")
		}
	}
}

// TestOverlayEmptyCaptureBitIdentical pins the RNG-order contract: a
// sensor wired to an empty (or never-hit) overlay must produce captures
// bit-identical to the same sensor with no overlay at all — the overlay
// fold happens after the world raycast and never consumes RNG, so a
// solo-equivalent fleet member draws the exact solo noise stream.
func TestOverlayEmptyCaptureBitIdentical(t *testing.T) {
	w := randomWorld(5)
	w.BuildIndex()

	plain := NewDepthCamera(77)
	wired := NewDepthCamera(77)
	empty := NewOverlay()
	empty.Rebuild()
	wired.SetOverlay(empty, 0)

	// A populated overlay whose spheres are far outside every ray's reach
	// must be just as invisible.
	far := NewOverlay()
	far.Add(1, geom.V3(500, 500, 5), 0.4)
	far.Rebuild()
	farCam := NewDepthCamera(77)
	farCam.SetOverlay(far, 0)

	lidarPlain := NewLidarAlt(33)
	lidarWired := NewLidarAlt(33)
	lidarWired.SetOverlay(empty, 0)

	rng := rand.New(rand.NewSource(9))
	for frame := 0; frame < 40; frame++ {
		pos := geom.V3((rng.Float64()-0.5)*120, (rng.Float64()-0.5)*120, 2+rng.Float64()*25)
		yaw := rng.Float64() * 2 * math.Pi
		a := plain.Capture(w, pos, yaw)
		b := wired.Capture(w, pos, yaw)
		c := farCam.Capture(w, pos, yaw)
		if len(a) != len(b) || len(a) != len(c) {
			t.Fatalf("frame %d: return counts diverge: %d/%d/%d", frame, len(a), len(b), len(c))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("frame %d return %d: empty overlay perturbed capture: %+v vs %+v", frame, i, a[i], b[i])
			}
			if a[i] != c[i] {
				t.Fatalf("frame %d return %d: out-of-reach overlay perturbed capture: %+v vs %+v", frame, i, a[i], c[i])
			}
		}
		ra, oka := lidarPlain.Read(w, pos)
		rb, okb := lidarWired.Read(w, pos)
		if oka != okb || ra != rb {
			t.Fatalf("frame %d: empty overlay perturbed lidar: (%v,%v) vs (%v,%v)", frame, ra, oka, rb, okb)
		}
	}
}

// TestOverlayTruncatesSensors: a drone hovering between the sensor and
// the world surface shortens the lidar reading and the depth returns —
// the inter-drone sensing the fleet world is built on.
func TestOverlayTruncatesSensors(t *testing.T) {
	w := randomWorld(8)
	w.BuildIndex()
	pos := geom.V3(0, 0, 20)

	// Lidar: a wingman 5 m below must produce a ~4.6 m return where the
	// ground alone is out of the altimeter's range (and shorter than any
	// ground return the solo read could have produced).
	solo := NewLidarAlt(1)
	fleet := NewLidarAlt(1)
	ov := NewOverlay()
	ov.Add(1, geom.V3(0, 0, 15), 0.4)
	ov.Rebuild()
	fleet.SetOverlay(ov, 0)
	rSolo, okSolo := solo.Read(w, pos)
	rFleet, ok := fleet.Read(w, pos)
	if !ok {
		t.Fatal("lidar lost the return entirely")
	}
	if okSolo && rFleet >= rSolo {
		t.Fatalf("wingman below did not truncate lidar: %v >= %v", rFleet, rSolo)
	}
	if want := 5.0 - 0.4; math.Abs(rFleet-want) > 0.5 {
		t.Fatalf("lidar range %v, want about %v (sphere top plus noise)", rFleet, want)
	}

	// Depth: a wingman dead ahead must pull at least one return closer.
	soloCam := NewDepthCamera(2)
	fleetCam := NewDepthCamera(2)
	dov := NewOverlay()
	yaw := 0.0
	dov.Add(1, geom.V3(4, 0, 20), 0.5) // straight ahead at +X
	dov.Rebuild()
	fleetCam.SetOverlay(dov, 0)
	a := soloCam.Capture(w, pos, yaw)
	b := fleetCam.Capture(w, pos, yaw)
	closer := false
	for i := range b {
		if b[i].Hit && (!a[i].Hit || b[i].Point.Dist(pos) < a[i].Point.Dist(pos)) {
			closer = true
			break
		}
	}
	if !closer {
		t.Fatal("depth capture did not register the wingman ahead")
	}
}

// TestOverlayRebuildAllocFree asserts the steady-state lockstep cycle —
// Reset, Add, Rebuild, query — stays allocation-free once warm, so fleet
// ticking adds no per-tick garbage.
func TestOverlayRebuildAllocFree(t *testing.T) {
	ov := NewOverlay()
	centers := []geom.Vec3{{X: 0, Y: 0, Z: 10}, {X: 8, Y: 3, Z: 12}, {X: -5, Y: 6, Z: 9}}
	cycle := func() {
		ov.Reset()
		for i, c := range centers {
			ov.Add(int32(i), c, 0.35)
		}
		ov.Rebuild()
		ov.Hit(geom.V3(1, 1, 10), 0.5, 0)
		ov.Raycast(geom.Ray{Origin: geom.V3(0, 0, 30), Dir: geom.V3(0, 0, -1)}, 40, 0)
	}
	cycle() // warm the storage
	if n := testing.AllocsPerRun(100, cycle); n > 0 {
		t.Errorf("overlay lockstep cycle allocates %.1f/op in steady state, want 0", n)
	}
}
