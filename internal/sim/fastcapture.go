package sim

import (
	"math"
	"slices"

	"repro/internal/geom"
)

// Column-bundled depth capture (fast engine mode).
//
// Capture runs one grid traversal per ray — Cols x Rows walks per frame.
// But every ray in one fan column shares the same azimuth: their XY
// projections are the same line (pitch only rescales the XY speed), so
// they cross exactly the same grid cells in the same order. captureFast
// therefore walks each column ONCE — along the column's longest-reaching
// row, with no early termination — gathering the column's candidate
// obstacles, then processes the rays in the exact row-major order of
// Capture against their column's candidate lists.
//
// The kernel is bit-identical to Capture (TestCaptureFastIdentical):
//   - The column candidate set is a conservative superset of each ray's
//     per-ray traversal set (same line, greater or equal XY reach, no
//     best-hit early-out), and a superset cannot change a minimum.
//   - The soft-canopy RNG contract survives: candidates are deduplicated
//     and sorted ascending, the order softTrees requires, and every extra
//     candidate the bundle adds lies in a cell whose entry parameter
//     exceeds the ray's final pre-tree best — so its hit (if any) is
//     beyond the running best and consumes no RNG draw, exactly as if the
//     per-ray walk had pruned it.
//   - The per-ray noise draws happen in pass two, in fan order.
//
// The saving is the traversal overhead: Cols walks and Cols sorts per
// frame instead of Cols x Rows.

// captureFast is the bundled-traversal capture. ok=false when the world
// or fan shape cannot take the fast path (no index, degenerate fan); the
// caller falls back to the exact capture having consumed no RNG.
func (d *DepthCamera) captureFast(w *World, pos geom.Vec3, yaw float64) ([]DepthReturn, bool) {
	ix := w.index
	if ix == nil || d.Rows < 2 || d.Cols < 2 {
		return nil, false
	}
	dirs := d.rayFan()
	cols, rows := d.Cols, d.Rows
	cy, sy := math.Cos(yaw), math.Sin(yaw)

	// The bundle walks along the row with the largest XY reach (smallest
	// |pitch|): its traversal covers every other row's as a prefix.
	midRow := 0
	bestXY := -1.0
	for r := 0; r < rows; r++ {
		bd := dirs[r*cols]
		if xy := math.Hypot(bd.X, bd.Y); xy > bestXY {
			bestXY = xy
			midRow = r
		}
	}

	if len(d.seen) < len(w.Trees) {
		d.seen = make([]uint32, len(w.Trees))
	}
	if len(d.seenB) < len(w.Buildings) {
		d.seenB = make([]uint32, len(w.Buildings))
	}
	if cap(d.colOff) < 2*(cols+1) {
		d.colOff = make([]int32, 2*(cols+1))
	}
	d.colOff = d.colOff[:2*(cols+1)]
	treeOff := d.colOff[:cols+1]
	bldOff := d.colOff[cols+1:]
	d.colTree = d.colTree[:0]
	d.colBld = d.colBld[:0]

	// Pass one: one traversal per column gathers deduplicated candidates.
	for c := 0; c < cols; c++ {
		treeOff[c] = int32(len(d.colTree))
		bldOff[c] = int32(len(d.colBld))
		d.stamp++
		if d.stamp == 0 { // wrapped: stale stamps could collide, reset
			for i := range d.seen {
				d.seen[i] = 0
			}
			for i := range d.seenB {
				d.seenB[i] = 0
			}
			d.stamp = 1
		}
		bd := dirs[midRow*cols+c]
		wd := geom.V3(bd.X*cy-bd.Y*sy, bd.X*sy+bd.Y*cy, bd.Z)
		wk, ok := ix.startWalk(geom.Ray{Origin: pos, Dir: wd}, d.MaxRange)
		if ok {
			for {
				ci, _, more := wk.next()
				if !more {
					break
				}
				cell := &ix.cells[ci]
				for _, bi := range cell.buildings {
					if d.seenB[bi] != d.stamp {
						d.seenB[bi] = d.stamp
						d.colBld = append(d.colBld, bi)
					}
				}
				for _, ti := range cell.trees {
					if d.seen[ti] != d.stamp {
						d.seen[ti] = d.stamp
						d.colTree = append(d.colTree, ti)
					}
				}
			}
		}
		slices.Sort(d.colTree[treeOff[c]:])
	}
	treeOff[cols] = int32(len(d.colTree))
	bldOff[cols] = int32(len(d.colBld))

	// Pass two: the rays, in the exact fan order of Capture.
	out := d.buf[:0]
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			bd := dirs[r*cols+c]
			wd := geom.V3(bd.X*cy-bd.Y*sy, bd.X*sy+bd.Y*cy, bd.Z)
			ray := geom.Ray{Origin: pos, Dir: wd}
			best := math.Inf(1)
			if wd.Z < -1e-12 {
				tg := -pos.Z / wd.Z
				if tg >= 0 && tg <= d.MaxRange {
					best = tg
				}
			}
			for _, bi := range d.colBld[bldOff[c]:bldOff[c+1]] {
				if tb, hit := ray.IntersectAABB(w.Buildings[bi], d.MaxRange); hit && tb < best {
					best = tb
				}
			}
			if trees := d.colTree[treeOff[c]:treeOff[c+1]]; len(trees) > 0 {
				best = d.softTrees(w, ray, best, trees)
			}
			if math.IsInf(best, 1) {
				out = append(out, DepthReturn{Point: bd.Scale(d.MaxRange), Hit: false})
				continue
			}
			t := best + d.rng.NormFloat64()*d.NoiseStd
			if t < 0.1 {
				t = 0.1
			}
			out = append(out, DepthReturn{Point: bd.Scale(t), Hit: true})
		}
	}
	out = d.appendSpurious(out)
	d.buf = out
	return out, true
}

// appendSpurious injects the per-frame spurious cluster (field profile /
// state-estimate errors) — shared by both capture paths so their RNG
// consumption stays identical.
func (d *DepthCamera) appendSpurious(out []DepthReturn) []DepthReturn {
	if d.ErroneousRate > 0 && d.rng.Float64() < d.ErroneousRate {
		n := 4 + d.rng.Intn(6)
		base := geom.V3(2+d.rng.Float64()*5, (d.rng.Float64()-0.5)*4, (d.rng.Float64()-0.5)*2)
		for i := 0; i < n; i++ {
			p := base.Add(geom.V3(d.rng.Float64(), d.rng.Float64(), d.rng.Float64()).Scale(0.5))
			out = append(out, DepthReturn{Point: p, Hit: true})
		}
	}
	return out
}
