// Package sim is the AirSim-equivalent simulation substrate (see DESIGN.md
// substitution table): procedural 3-D worlds, quadrotor dynamics, weather,
// and the sensor suite of the paper's platform — GPS with drift, IMU,
// barometer, downward lidar altimeter, forward depth camera, and the
// downward color camera that feeds marker detection.
//
// The simulator exposes ground truth only to the scenario harness; the
// landing system under test sees sensor outputs exclusively.
package sim

import (
	"math"
	"slices"

	"repro/internal/geom"
	"repro/internal/vision"
)

// World is the static environment of one scenario.
//
// A World is immutable once generation finishes: scenario runs, sensors
// and the renderer only read it, which is what allows the worldgen cache
// to share one World across concurrent campaign workers. Code that does
// mutate the obstacle lists (world generation, bespoke test setups) must
// do so before BuildIndex and never after the world has been shared.
type World struct {
	// Bounds is the legal flight volume.
	Bounds geom.AABB
	// Buildings are solid axis-aligned structures.
	Buildings []geom.AABB
	// Trees are vertical cylinders with soft canopies (the depth sensor
	// sees them late; see DepthCamera).
	Trees []geom.Cylinder
	// Water marks ground rectangles that are unsafe to land on.
	Water []geom.AABB
	// Markers on the ground: index 0 is the landing target, the rest are
	// the false-positive decoys the SIL scenarios place near it.
	Markers []vision.MarkerInstance
	// GroundSeed drives the terrain texture.
	GroundSeed int64
	// GroundBase and GroundContrast parameterize terrain albedo.
	GroundBase, GroundContrast float64

	// index accelerates the obstacle queries below; nil means every query
	// runs its linear-scan reference path (see index.go).
	index *spatialIndex
}

// TargetMarker returns the landing target instance. ok is false when the
// world has no markers (mis-specified scenario).
func (w *World) TargetMarker() (vision.MarkerInstance, bool) {
	if len(w.Markers) == 0 {
		return vision.MarkerInstance{}, false
	}
	return w.Markers[0], true
}

// CollideSphere reports whether a sphere (the vehicle body) at c with
// radius r intersects any building, tree trunk, or the ground.
func (w *World) CollideSphere(c geom.Vec3, r float64) bool {
	if c.Z-r < 0 {
		return true
	}
	return w.HitObstacle(c, r)
}

// HitObstacle is CollideSphere minus the ground plane (the landing logic
// handles ground contact separately). It is the per-physics-tick collision
// check of the scenario runner.
func (w *World) HitObstacle(c geom.Vec3, r float64) bool {
	if ix := w.index; ix != nil {
		cx0, cy0, cx1, cy1, ok := ix.cellRange(c.X-r, c.Y-r, c.X+r, c.Y+r)
		if !ok {
			return false
		}
		for cy := cy0; cy <= cy1; cy++ {
			for cx := cx0; cx <= cx1; cx++ {
				cell := &ix.cells[cy*ix.nx+cx]
				for _, bi := range cell.buildings {
					if w.Buildings[bi].IntersectsSphere(c, r) {
						return true
					}
				}
				for _, ti := range cell.trees {
					if w.Trees[ti].Dist(c) <= r {
						return true
					}
				}
			}
		}
		return false
	}
	for i := range w.Buildings {
		if w.Buildings[i].IntersectsSphere(c, r) {
			return true
		}
	}
	for i := range w.Trees {
		if w.Trees[i].Dist(c) <= r {
			return true
		}
	}
	return false
}

// Raycast returns the first obstacle or ground intersection along the ray
// within tmax. hit is false if nothing is struck.
func (w *World) Raycast(ray geom.Ray, tmax float64) (t float64, hit bool) {
	best := math.Inf(1)
	// Ground plane z=0.
	if ray.Dir.Z < -1e-12 {
		tg := -ray.Origin.Z / ray.Dir.Z
		if tg >= 0 && tg <= tmax {
			best = tg
		}
	}
	if ix := w.index; ix != nil {
		best = ix.raycastObstacles(w, ray, tmax, best)
	} else {
		for i := range w.Buildings {
			if tb, ok := ray.IntersectAABB(w.Buildings[i], tmax); ok && tb < best {
				best = tb
			}
		}
		for i := range w.Trees {
			if tt, ok := w.Trees[i].IntersectRay(ray, tmax); ok && tt < best {
				best = tt
			}
		}
	}
	if math.IsInf(best, 1) {
		return 0, false
	}
	return best, true
}

// GroundHeightAt returns the height of the surface under (x, y): rooftop
// or canopy height when a structure stands there, else 0. It backs the
// lidar altimeter (per tick) and the renderer's occluder test (per pixel),
// so it routes through the spatial index when one is built.
func (w *World) GroundHeightAt(x, y float64) float64 {
	if ix := w.index; ix != nil {
		h := 0.0
		cell := ix.cellAt(x, y)
		if cell == nil {
			return 0
		}
		for _, bi := range cell.buildings {
			b := &w.Buildings[bi]
			if x >= b.Min.X && x <= b.Max.X && y >= b.Min.Y && y <= b.Max.Y && b.Max.Z > h {
				h = b.Max.Z
			}
		}
		for _, ti := range cell.trees {
			tr := &w.Trees[ti]
			dx, dy := x-tr.Center.X, y-tr.Center.Y
			if dx*dx+dy*dy <= tr.Radius*tr.Radius && tr.TopZ > h {
				h = tr.TopZ
			}
		}
		return h
	}
	h := 0.0
	for i := range w.Buildings {
		b := w.Buildings[i]
		if x >= b.Min.X && x <= b.Max.X && y >= b.Min.Y && y <= b.Max.Y && b.Max.Z > h {
			h = b.Max.Z
		}
	}
	for i := range w.Trees {
		tr := w.Trees[i]
		dx, dy := x-tr.Center.X, y-tr.Center.Y
		if dx*dx+dy*dy <= tr.Radius*tr.Radius && tr.TopZ > h {
			h = tr.TopZ
		}
	}
	return h
}

// OnWater reports whether the ground position lies on a water region.
// Water lists hold at most a handful of rectangles, so this stays linear.
func (w *World) OnWater(x, y float64) bool {
	for i := range w.Water {
		wa := w.Water[i]
		if x >= wa.Min.X && x <= wa.Max.X && y >= wa.Min.Y && y <= wa.Max.Y {
			return true
		}
	}
	return false
}

// OccluderAt reports whether the vertical ray from the camera down to
// ground position (x, y) is blocked, and by what albedo at what height —
// the renderer's per-pixel occluder query (rooftops, canopies, water).
func (w *World) OccluderAt(x, y float64) (albedo, top float64, blocked bool) {
	h := w.GroundHeightAt(x, y)
	if h <= 0 {
		if w.OnWater(x, y) {
			// Water renders dark and flat.
			return 0.18, 0, true
		}
		return 0, 0, false
	}
	// Rooftops are mid-gray; canopies darker. The result only depends on
	// whether ANY canopy reaches the surface height, so candidate order is
	// irrelevant and the indexed path is exact.
	alb := 0.30
	if ix := w.index; ix != nil {
		if cell := ix.cellAt(x, y); cell != nil {
			for _, ti := range cell.trees {
				tr := &w.Trees[ti]
				dx, dy := x-tr.Center.X, y-tr.Center.Y
				if dx*dx+dy*dy <= tr.Radius*tr.Radius && tr.TopZ >= h-1e-9 {
					alb = 0.15
					break
				}
			}
		}
		return alb, h, true
	}
	for i := range w.Trees {
		tr := w.Trees[i]
		dx, dy := x-tr.Center.X, y-tr.Center.Y
		if dx*dx+dy*dy <= tr.Radius*tr.Radius && tr.TopZ >= h-1e-9 {
			alb = 0.15
			break
		}
	}
	return alb, h, true
}

// OccluderFreeRect reports that no occluder — building footprint, tree
// footprint or water rectangle — overlaps the axis-aligned ground rectangle
// [x0,x1]x[y0,y1]. A true result proves OccluderAt returns blocked=false at
// every point inside the rectangle, which lets the renderer drop the
// per-pixel occluder query for a whole frame. False is conservative (tree
// footprints are tested by bounding box): the rectangle may still be clear,
// and the caller falls back to the exact per-pixel path.
func (w *World) OccluderFreeRect(x0, y0, x1, y1 float64) bool {
	for i := range w.Water {
		wa := &w.Water[i]
		if x0 <= wa.Max.X && x1 >= wa.Min.X && y0 <= wa.Max.Y && y1 >= wa.Min.Y {
			return false
		}
	}
	if ix := w.index; ix != nil {
		cx0, cy0, cx1, cy1, ok := ix.cellRange(x0, y0, x1, y1)
		if !ok {
			return true
		}
		for cy := cy0; cy <= cy1; cy++ {
			for cx := cx0; cx <= cx1; cx++ {
				cell := &ix.cells[cy*ix.nx+cx]
				for _, bi := range cell.buildings {
					b := &w.Buildings[bi]
					if x0 <= b.Max.X && x1 >= b.Min.X && y0 <= b.Max.Y && y1 >= b.Min.Y {
						return false
					}
				}
				for _, ti := range cell.trees {
					tr := &w.Trees[ti]
					if x0 <= tr.Center.X+tr.Radius && x1 >= tr.Center.X-tr.Radius &&
						y0 <= tr.Center.Y+tr.Radius && y1 >= tr.Center.Y-tr.Radius {
						return false
					}
				}
			}
		}
		return true
	}
	for i := range w.Buildings {
		b := &w.Buildings[i]
		if x0 <= b.Max.X && x1 >= b.Min.X && y0 <= b.Max.Y && y1 >= b.Min.Y {
			return false
		}
	}
	for i := range w.Trees {
		tr := &w.Trees[i]
		if x0 <= tr.Center.X+tr.Radius && x1 >= tr.Center.X-tr.Radius &&
			y0 <= tr.Center.Y+tr.Radius && y1 >= tr.Center.Y-tr.Radius {
			return false
		}
	}
	return true
}

// Scene builds the downward-camera scene for rendering.
func (w *World) Scene() *vision.Scene {
	return &vision.Scene{
		Ground: vision.GroundTexture{
			Seed:     w.GroundSeed,
			Base:     w.GroundBase,
			Contrast: w.GroundContrast,
		},
		Markers:      w.Markers,
		OccluderAt:   w.OccluderAt,
		OccluderFree: w.OccluderFreeRect,
	}
}

// SceneNear returns a Scene restricted to markers, structures and water
// within radius of the ground point under center — the camera footprint.
// Rendering cost then scales with local clutter, not world size.
func (w *World) SceneNear(center geom.Vec3, radius float64) *vision.Scene {
	sub := &World{}
	w.sceneNearInto(center, radius, sub)
	sub.BuildIndex()
	return sub.Scene()
}

// sceneNearInto filters the world down to the camera footprint, appending
// into sub's existing slices so a reused sub-world allocates nothing in
// steady state. The indexed path appends obstacles in grid-cell order,
// not original index order — safe because every query the renderer makes
// on the sub-world is order-independent (max/any-test/first-binary-match);
// do not feed the sub-world to order-sensitive consumers such as the
// depth camera's RNG-per-candidate soft raycast.
func (w *World) sceneNearInto(center geom.Vec3, radius float64, sub *World) {
	sub.Bounds = w.Bounds
	sub.GroundSeed = w.GroundSeed
	sub.GroundBase = w.GroundBase
	sub.GroundContrast = w.GroundContrast
	sub.Buildings = sub.Buildings[:0]
	sub.Trees = sub.Trees[:0]
	sub.Water = sub.Water[:0]
	sub.Markers = sub.Markers[:0]

	c2 := geom.V3(center.X, center.Y, 0)
	if ix := w.index; ix != nil {
		// Candidate cells covering the footprint disk; exact distance tests
		// below keep the filtered set identical to the linear scan.
		cx0, cy0, cx1, cy1, ok := ix.cellRange(center.X-radius, center.Y-radius,
			center.X+radius, center.Y+radius)
		if ok {
			for cy := cy0; cy <= cy1; cy++ {
				for cx := cx0; cx <= cx1; cx++ {
					cell := &ix.cells[cy*ix.nx+cx]
					for _, bi := range cell.buildings {
						if w.Buildings[bi].Dist(c2) <= radius && !slices.Contains(sub.Buildings, w.Buildings[bi]) {
							sub.Buildings = append(sub.Buildings, w.Buildings[bi])
						}
					}
					for _, ti := range cell.trees {
						if w.Trees[ti].Bounds().Dist(c2) <= radius && !slices.Contains(sub.Trees, w.Trees[ti]) {
							sub.Trees = append(sub.Trees, w.Trees[ti])
						}
					}
				}
			}
		}
	} else {
		for i := range w.Buildings {
			if w.Buildings[i].Dist(c2) <= radius {
				sub.Buildings = append(sub.Buildings, w.Buildings[i])
			}
		}
		for i := range w.Trees {
			if w.Trees[i].Bounds().Dist(c2) <= radius {
				sub.Trees = append(sub.Trees, w.Trees[i])
			}
		}
	}
	for i := range w.Water {
		if w.Water[i].Dist(c2) <= radius {
			sub.Water = append(sub.Water, w.Water[i])
		}
	}
	for i := range w.Markers {
		if w.Markers[i].Center.HorizDist(c2) <= radius+w.Markers[i].Size {
			sub.Markers = append(sub.Markers, w.Markers[i])
		}
	}
}

// FreeGroundPosition reports whether the point is inside bounds, not on
// water, and at least clearance meters away from every structure —
// used by scenario generation to place markers plausibly.
func (w *World) FreeGroundPosition(x, y, clearance float64) bool {
	p := geom.V3(x, y, 0)
	if !w.Bounds.Contains(p.WithZ(w.Bounds.Min.Z + 0.1)) {
		return false
	}
	if w.OnWater(x, y) {
		return false
	}
	if ix := w.index; ix != nil {
		cx0, cy0, cx1, cy1, ok := ix.cellRange(x-clearance, y-clearance, x+clearance, y+clearance)
		if !ok {
			return true
		}
		for cy := cy0; cy <= cy1; cy++ {
			for cx := cx0; cx <= cx1; cx++ {
				cell := &ix.cells[cy*ix.nx+cx]
				for _, bi := range cell.buildings {
					if w.Buildings[bi].Dist(p) < clearance {
						return false
					}
				}
				for _, ti := range cell.trees {
					if w.Trees[ti].Dist(p) < clearance {
						return false
					}
				}
			}
		}
		return true
	}
	for i := range w.Buildings {
		if w.Buildings[i].Dist(p) < clearance {
			return false
		}
	}
	for i := range w.Trees {
		if w.Trees[i].Dist(p) < clearance {
			return false
		}
	}
	return true
}
