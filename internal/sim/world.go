// Package sim is the AirSim-equivalent simulation substrate (see DESIGN.md
// substitution table): procedural 3-D worlds, quadrotor dynamics, weather,
// and the sensor suite of the paper's platform — GPS with drift, IMU,
// barometer, downward lidar altimeter, forward depth camera, and the
// downward color camera that feeds marker detection.
//
// The simulator exposes ground truth only to the scenario harness; the
// landing system under test sees sensor outputs exclusively.
package sim

import (
	"math"

	"repro/internal/geom"
	"repro/internal/vision"
)

// World is the static environment of one scenario.
type World struct {
	// Bounds is the legal flight volume.
	Bounds geom.AABB
	// Buildings are solid axis-aligned structures.
	Buildings []geom.AABB
	// Trees are vertical cylinders with soft canopies (the depth sensor
	// sees them late; see DepthCamera).
	Trees []geom.Cylinder
	// Water marks ground rectangles that are unsafe to land on.
	Water []geom.AABB
	// Markers on the ground: index 0 is the landing target, the rest are
	// the false-positive decoys the SIL scenarios place near it.
	Markers []vision.MarkerInstance
	// GroundSeed drives the terrain texture.
	GroundSeed int64
	// GroundBase and GroundContrast parameterize terrain albedo.
	GroundBase, GroundContrast float64
}

// TargetMarker returns the landing target instance. ok is false when the
// world has no markers (mis-specified scenario).
func (w *World) TargetMarker() (vision.MarkerInstance, bool) {
	if len(w.Markers) == 0 {
		return vision.MarkerInstance{}, false
	}
	return w.Markers[0], true
}

// CollideSphere reports whether a sphere (the vehicle body) at c with
// radius r intersects any building, tree trunk, or the ground.
func (w *World) CollideSphere(c geom.Vec3, r float64) bool {
	if c.Z-r < 0 {
		return true
	}
	for i := range w.Buildings {
		if w.Buildings[i].IntersectsSphere(c, r) {
			return true
		}
	}
	for i := range w.Trees {
		if w.Trees[i].Dist(c) <= r {
			return true
		}
	}
	return false
}

// Raycast returns the first obstacle or ground intersection along the ray
// within tmax. hit is false if nothing is struck.
func (w *World) Raycast(ray geom.Ray, tmax float64) (t float64, hit bool) {
	best := math.Inf(1)
	// Ground plane z=0.
	if ray.Dir.Z < -1e-12 {
		tg := -ray.Origin.Z / ray.Dir.Z
		if tg >= 0 && tg <= tmax {
			best = tg
		}
	}
	for i := range w.Buildings {
		if tb, ok := ray.IntersectAABB(w.Buildings[i], tmax); ok && tb < best {
			best = tb
		}
	}
	for i := range w.Trees {
		if tt, ok := w.Trees[i].IntersectRay(ray, tmax); ok && tt < best {
			best = tt
		}
	}
	if math.IsInf(best, 1) {
		return 0, false
	}
	return best, true
}

// GroundHeightAt returns the height of the surface under (x, y): rooftop
// or canopy height when a structure stands there, else 0.
func (w *World) GroundHeightAt(x, y float64) float64 {
	h := 0.0
	p := geom.V3(x, y, 0)
	for i := range w.Buildings {
		b := w.Buildings[i]
		if p.X >= b.Min.X && p.X <= b.Max.X && p.Y >= b.Min.Y && p.Y <= b.Max.Y && b.Max.Z > h {
			h = b.Max.Z
		}
	}
	for i := range w.Trees {
		tr := w.Trees[i]
		dx, dy := x-tr.Center.X, y-tr.Center.Y
		if dx*dx+dy*dy <= tr.Radius*tr.Radius && tr.TopZ > h {
			h = tr.TopZ
		}
	}
	return h
}

// OnWater reports whether the ground position lies on a water region.
func (w *World) OnWater(x, y float64) bool {
	for i := range w.Water {
		wa := w.Water[i]
		if x >= wa.Min.X && x <= wa.Max.X && y >= wa.Min.Y && y <= wa.Max.Y {
			return true
		}
	}
	return false
}

// Scene builds the downward-camera scene for rendering.
func (w *World) Scene() *vision.Scene {
	return &vision.Scene{
		Ground: vision.GroundTexture{
			Seed:     w.GroundSeed,
			Base:     w.GroundBase,
			Contrast: w.GroundContrast,
		},
		Markers: w.Markers,
		OccluderAt: func(x, y float64) (float64, float64, bool) {
			h := w.GroundHeightAt(x, y)
			if h <= 0 {
				if w.OnWater(x, y) {
					// Water renders dark and flat.
					return 0.18, 0, true
				}
				return 0, 0, false
			}
			// Rooftops are mid-gray; canopies darker.
			alb := 0.30
			for i := range w.Trees {
				tr := w.Trees[i]
				dx, dy := x-tr.Center.X, y-tr.Center.Y
				if dx*dx+dy*dy <= tr.Radius*tr.Radius && tr.TopZ >= h-1e-9 {
					alb = 0.15
					break
				}
			}
			return alb, h, true
		},
	}
}

// SceneNear returns a Scene restricted to markers, structures and water
// within radius of the ground point under center — the camera footprint.
// Rendering cost then scales with local clutter, not world size.
func (w *World) SceneNear(center geom.Vec3, radius float64) *vision.Scene {
	sub := World{
		Bounds:         w.Bounds,
		GroundSeed:     w.GroundSeed,
		GroundBase:     w.GroundBase,
		GroundContrast: w.GroundContrast,
	}
	c2 := geom.V3(center.X, center.Y, 0)
	for i := range w.Buildings {
		if w.Buildings[i].Dist(c2) <= radius {
			sub.Buildings = append(sub.Buildings, w.Buildings[i])
		}
	}
	for i := range w.Trees {
		if w.Trees[i].Bounds().Dist(c2) <= radius {
			sub.Trees = append(sub.Trees, w.Trees[i])
		}
	}
	for i := range w.Water {
		if w.Water[i].Dist(c2) <= radius {
			sub.Water = append(sub.Water, w.Water[i])
		}
	}
	for i := range w.Markers {
		if w.Markers[i].Center.HorizDist(c2) <= radius+w.Markers[i].Size {
			sub.Markers = append(sub.Markers, w.Markers[i])
		}
	}
	sc := sub.Scene()
	// The closure must capture the filtered copy, not the receiver.
	return sc
}

// FreeGroundPosition reports whether the point is inside bounds, not on
// water, and at least clearance meters away from every structure —
// used by scenario generation to place markers plausibly.
func (w *World) FreeGroundPosition(x, y, clearance float64) bool {
	p := geom.V3(x, y, 0)
	if !w.Bounds.Contains(p.WithZ(w.Bounds.Min.Z + 0.1)) {
		return false
	}
	if w.OnWater(x, y) {
		return false
	}
	for i := range w.Buildings {
		if w.Buildings[i].Dist(p) < clearance {
			return false
		}
	}
	for i := range w.Trees {
		if w.Trees[i].Dist(p) < clearance {
			return false
		}
	}
	return true
}
