package sim

import (
	"math/rand"
	"testing"
)

// TestOccluderFreeRect pins the frame-level occluder cull's soundness and
// its index/linear equivalence: a rectangle reported free must contain no
// point where OccluderAt blocks, and the indexed answer must match the
// linear reference scan.
func TestOccluderFreeRect(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		w := randomWorld(seed)
		w.BuildIndex()
		naive := randomWorld(seed)

		rng := rand.New(rand.NewSource(seed + 2000))
		free, blocked := 0, 0
		for q := 0; q < 500; q++ {
			x0 := (rng.Float64() - 0.5) * 220
			y0 := (rng.Float64() - 0.5) * 220
			x1 := x0 + rng.Float64()*18
			y1 := y0 + rng.Float64()*18

			got := w.OccluderFreeRect(x0, y0, x1, y1)
			if lin := naive.OccluderFreeRect(x0, y0, x1, y1); got != lin {
				t.Fatalf("seed %d: OccluderFreeRect(%v,%v,%v,%v) = %v indexed, %v linear",
					seed, x0, y0, x1, y1, got, lin)
			}
			if got {
				free++
				// Soundness: no sampled point inside a free rectangle may be
				// occluded (this is what lets the renderer skip OccluderAt).
				for s := 0; s < 25; s++ {
					px := x0 + rng.Float64()*(x1-x0)
					py := y0 + rng.Float64()*(y1-y0)
					if _, _, isBlocked := w.OccluderAt(px, py); isBlocked {
						t.Fatalf("seed %d: rect (%v,%v)-(%v,%v) reported free but (%v,%v) is occluded",
							seed, x0, y0, x1, y1, px, py)
					}
				}
			} else {
				blocked++
			}
		}
		// The random world is dense but not solid: both answers must occur,
		// or the test proves nothing.
		if free == 0 || blocked == 0 {
			t.Fatalf("seed %d: degenerate sampling (%d free, %d blocked)", seed, free, blocked)
		}
	}
}
