package sim

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

// clutterWorld builds a randomized world with enough trees and buildings
// that the column bundles carry real candidate lists (including soft-canopy
// RNG draws), indexed like worldgen leaves its worlds.
func clutterWorld(seed int64, trees, buildings int) *World {
	rng := rand.New(rand.NewSource(seed))
	w := &World{Bounds: geom.NewAABB(geom.V3(-80, -80, 0), geom.V3(80, 80, 50))}
	for i := 0; i < buildings; i++ {
		cx := (rng.Float64() - 0.5) * 120
		cy := (rng.Float64() - 0.5) * 120
		hw := 2 + rng.Float64()*6
		hd := 2 + rng.Float64()*6
		h := 4 + rng.Float64()*18
		w.Buildings = append(w.Buildings,
			geom.NewAABB(geom.V3(cx-hw, cy-hd, 0), geom.V3(cx+hw, cy+hd, h)))
	}
	for i := 0; i < trees; i++ {
		w.Trees = append(w.Trees, geom.Cylinder{
			Center: geom.V2((rng.Float64()-0.5)*140, (rng.Float64()-0.5)*140),
			Radius: 1 + rng.Float64()*2.5,
			BaseZ:  0,
			TopZ:   4 + rng.Float64()*8,
		})
	}
	w.BuildIndex()
	return w
}

// TestCaptureFastIdentical is the bit-identity contract of the bundled
// capture kernel: for the same camera seed, the fast and exact paths must
// return byte-for-byte identical frames — including every soft-canopy and
// noise RNG draw — across cluttered worlds, poses, and yaw angles.
func TestCaptureFastIdentical(t *testing.T) {
	for _, wc := range []struct {
		name             string
		trees, buildings int
	}{
		{"dense", 120, 30},
		{"sparse", 8, 3},
		{"treeless", 0, 20},
		{"empty", 0, 0},
	} {
		t.Run(wc.name, func(t *testing.T) {
			w := clutterWorld(31+int64(len(wc.name)), wc.trees, wc.buildings)
			exact := NewDepthCamera(42)
			fast := NewDepthCamera(42)
			fast.Fast = true
			rng := rand.New(rand.NewSource(7))
			for i := 0; i < 150; i++ {
				pos := geom.V3((rng.Float64()-0.5)*120, (rng.Float64()-0.5)*120, 1+rng.Float64()*20)
				yaw := rng.Float64() * 6.3
				a := exact.Capture(w, pos, yaw)
				b := fast.Capture(w, pos, yaw)
				if len(a) != len(b) {
					t.Fatalf("pose %d: %d vs %d returns", i, len(a), len(b))
				}
				for k := range a {
					if a[k] != b[k] {
						t.Fatalf("pose %d return %d: exact %+v fast %+v", i, k, a[k], b[k])
					}
				}
			}
		})
	}
}

// TestCaptureFastSpuriousRNG locks the shared RNG tail: with a spurious
// cluster rate the two paths must still agree, proving appendSpurious sits
// at the same point of the RNG stream on both.
func TestCaptureFastSpuriousRNG(t *testing.T) {
	w := clutterWorld(5, 60, 15)
	exact := NewDepthCamera(9)
	exact.ErroneousRate = 0.5
	fast := NewDepthCamera(9)
	fast.ErroneousRate = 0.5
	fast.Fast = true
	for i := 0; i < 80; i++ {
		pos := geom.V3(float64(i%10)*8-40, float64(i/10)*8-40, 6)
		a := exact.Capture(w, pos, float64(i)*0.21)
		b := fast.Capture(w, pos, float64(i)*0.21)
		if len(a) != len(b) {
			t.Fatalf("pose %d: %d vs %d returns", i, len(a), len(b))
		}
		for k := range a {
			if a[k] != b[k] {
				t.Fatalf("pose %d return %d: exact %+v fast %+v", i, k, a[k], b[k])
			}
		}
	}
}

// TestCaptureFastFallback: on a world without an index the fast camera must
// fall back to the exact path without having consumed any RNG.
func TestCaptureFastFallback(t *testing.T) {
	w := clutterWorld(11, 40, 10)
	w.DropIndex()
	exact := NewDepthCamera(3)
	fast := NewDepthCamera(3)
	fast.Fast = true
	for i := 0; i < 20; i++ {
		pos := geom.V3(float64(i)*3-30, 0, 8)
		a := exact.Capture(w, pos, 0.5)
		b := fast.Capture(w, pos, 0.5)
		if fmt.Sprint(a) != fmt.Sprint(b) {
			t.Fatalf("pose %d: fallback diverged", i)
		}
	}
}

// BenchmarkDepthCaptureFast is BenchmarkDepthCapture through the bundled
// kernel, for local comparison (the gated numbers live at the repo root).
func BenchmarkDepthCaptureFast(b *testing.B) {
	w := clutterWorld(1, 120, 30)
	d := NewDepthCamera(2)
	d.Fast = true
	pos := geom.V3(10, 5, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(d.Capture(w, pos, 0.7)) == 0 {
			b.Fatal("no returns")
		}
	}
}
