package sim

import (
	"math"
	"math/rand"
	"slices"

	"repro/internal/geom"
	"repro/internal/vision"
)

// GPS models a NEO-3-class GNSS receiver: white measurement noise plus a
// slowly wandering bias. The bias is an Ornstein–Uhlenbeck walk whose
// magnitude scales with weather degradation — reproducing the paper's
// observation of position drift during poor weather while VDOP/HDOP stayed
// within 2–8 (§V-C, Fig. 5d).
type GPS struct {
	// NoiseStd is the white noise sigma per axis (meters).
	NoiseStd float64
	// DriftRate scales the bias random walk (m/√s).
	DriftRate float64
	// DriftBound softly caps the bias magnitude via OU mean reversion.
	DriftBound float64

	bias geom.Vec3
	// faultBias is an externally injected receiver bias (fault-injection
	// campaigns: jamming/multipath on demand). It adds to the weather-driven
	// OU walk in Read and Bias, so drift metrics see it too; the zero value
	// keeps both on their historical code path bit for bit.
	faultBias geom.Vec3
	rng       *rand.Rand
}

// NewGPS returns a receiver with the given seed. degradation in [0,1]
// scales drift to the scenario's weather.
func NewGPS(seed int64, degradation float64) *GPS {
	return &GPS{
		NoiseStd:   0.25 + 0.35*degradation,
		DriftRate:  0.02 + 0.45*degradation,
		DriftBound: 0.5 + 4.5*degradation,
		rng:        rand.New(rand.NewSource(seed)),
	}
}

// Step advances the bias walk by dt.
func (g *GPS) Step(dt float64) {
	if g.DriftBound <= 0 {
		return
	}
	// OU process: mean-reverting random walk.
	theta := 0.02 // reversion rate
	sq := math.Sqrt(dt)
	g.bias = g.bias.
		Add(g.bias.Scale(-theta * dt)).
		Add(geom.V3(
			g.rng.NormFloat64()*g.DriftRate*sq,
			g.rng.NormFloat64()*g.DriftRate*sq,
			g.rng.NormFloat64()*g.DriftRate*sq*0.5,
		))
	g.bias = g.bias.ClampLen(g.DriftBound)
}

// Read returns the measured position for a true position.
func (g *GPS) Read(truth geom.Vec3) geom.Vec3 {
	p := truth.Add(g.bias)
	if g.faultBias != (geom.Vec3{}) {
		p = p.Add(g.faultBias)
	}
	return p.Add(geom.V3(
		g.rng.NormFloat64()*g.NoiseStd,
		g.rng.NormFloat64()*g.NoiseStd,
		g.rng.NormFloat64()*g.NoiseStd*1.5,
	))
}

// Bias exposes the current drift for ground-truth analysis (Fig. 5d),
// including any injected fault bias.
func (g *GPS) Bias() geom.Vec3 {
	if g.faultBias != (geom.Vec3{}) {
		return g.bias.Add(g.faultBias)
	}
	return g.bias
}

// SetFaultBias injects (or clears, with the zero vector) an additional
// receiver bias. RTK does not remove it: an injected drift models an
// interference condition corrections cannot fix.
func (g *GPS) SetFaultBias(b geom.Vec3) { g.faultBias = b }

// EnableRTK switches the receiver to RTK-corrected output: centimeter
// noise and no drift — the base-station mitigation the paper proposes for
// its field GPS problems (§V-C).
func (g *GPS) EnableRTK() {
	g.NoiseStd = 0.02
	g.DriftRate = 0
	g.DriftBound = 0
	g.bias = geom.Vec3{}
}

// IMU provides body velocity with noise and a small bias, standing in for
// the EKF's IMU-derived velocity state. The paper upgraded from a Pixhawk
// 2.4.8 to a Cuav X7+ for better inertial quality; QualityFactor models
// that difference (1 = X7+, ~3 = old Pixhawk).
type IMU struct {
	NoiseStd      float64
	QualityFactor float64
	rng           *rand.Rand
}

// NewIMU returns an IMU model. quality >= 1; larger is worse.
func NewIMU(seed int64, quality float64) *IMU {
	if quality < 1 {
		quality = 1
	}
	return &IMU{NoiseStd: 0.06, QualityFactor: quality, rng: rand.New(rand.NewSource(seed))}
}

// ReadVel returns measured velocity for a true velocity.
func (im *IMU) ReadVel(truth geom.Vec3) geom.Vec3 {
	s := im.NoiseStd * im.QualityFactor
	return truth.Add(geom.V3(
		im.rng.NormFloat64()*s,
		im.rng.NormFloat64()*s,
		im.rng.NormFloat64()*s,
	))
}

// Baro is a barometric altimeter: altitude plus slowly-varying offset.
type Baro struct {
	NoiseStd float64
	offset   float64
	rng      *rand.Rand
}

// NewBaro returns a barometer model.
func NewBaro(seed int64) *Baro {
	return &Baro{NoiseStd: 0.35, rng: rand.New(rand.NewSource(seed))}
}

// Step drifts the pressure offset.
func (b *Baro) Step(dt float64) {
	b.offset += b.rng.NormFloat64() * 0.01 * math.Sqrt(dt)
	b.offset = geom.Clamp(b.offset, -1.5, 1.5)
}

// Read returns measured altitude.
func (b *Baro) Read(truthZ float64) float64 {
	return truthZ + b.offset + b.rng.NormFloat64()*b.NoiseStd
}

// LidarAlt is the TFMini-Plus-class downward rangefinder: precise but
// range-limited, and it measures distance to whatever is below (rooftop,
// canopy), not altitude above the home plane.
type LidarAlt struct {
	MaxRange float64
	NoiseStd float64
	rng      *rand.Rand

	// Fleet overlay (nil outside fleet runs): other drones below the
	// vehicle truncate the measured range. self is excluded.
	ov   *Overlay
	self int32
}

// NewLidarAlt returns a rangefinder model.
func NewLidarAlt(seed int64) *LidarAlt {
	return &LidarAlt{MaxRange: 12, NoiseStd: 0.04, rng: rand.New(rand.NewSource(seed))}
}

// SetOverlay attaches a fleet overlay: other drones below truncate the
// measured range (the rangefinder sees whatever is under the vehicle).
// self is this drone's fleet member ID, excluded from the query. A nil
// overlay (the default) keeps the solo-engine path bit for bit.
func (l *LidarAlt) SetOverlay(ov *Overlay, self int32) {
	l.ov = ov
	l.self = self
}

// Read returns the measured range to the surface below, or ok=false when
// out of range.
//
// The overlay query runs after the world query and before the noise draw,
// so the RNG stream is consumed exactly as in a solo run: an attached but
// empty overlay is bit-identical to no overlay.
func (l *LidarAlt) Read(w *World, pos geom.Vec3) (float64, bool) {
	surface := w.GroundHeightAt(pos.X, pos.Y)
	r := pos.Z - surface
	if l.ov != nil {
		if t, hit := l.ov.Raycast(geom.Ray{Origin: pos, Dir: geom.V3(0, 0, -1)}, l.MaxRange, l.self); hit && t < r {
			r = t
		}
	}
	if r < 0 || r > l.MaxRange {
		return 0, false
	}
	return r + l.rng.NormFloat64()*l.NoiseStd, true
}

// DepthCamera is the forward-facing D435-class stereo depth sensor used
// for obstacle perception. It casts a ray fan and returns body-frame
// points.
type DepthCamera struct {
	// HFOV, VFOV are the fields of view in radians.
	HFOV, VFOV float64
	// Cols, Rows set the (decimated) ray grid resolution.
	Cols, Rows int
	// MaxRange is the usable stereo range.
	MaxRange float64
	// NoiseStd perturbs returned depths.
	NoiseStd float64
	// ErroneousRate is the probability per frame of a spurious cluster —
	// the "erroneous pointclouds" of Fig. 5c. Scaled up by GPS drift in
	// the field profile.
	ErroneousRate float64
	// Fast routes Capture through the column-bundled traversal kernel
	// (fastcapture.go) — part of the fast engine mode. The kernel is
	// bit-identical to the exact capture; off (the zero value), nothing
	// changes.
	Fast bool

	rng *rand.Rand

	// Fleet overlay (nil outside fleet runs): other drones intercept
	// depth rays as dynamic obstacles. self is excluded. The overlay is
	// folded into each ray after the world raycast completes, so the
	// world's RNG draws (soft canopies, range noise ordering) are
	// consumed exactly as in a solo run.
	ov   *Overlay
	self int32

	// Reused per-capture state; a camera belongs to one run and must not
	// be shared across goroutines.
	dirs     []geom.Vec3 // body-frame ray fan, cached per (Rows, Cols, FOV)
	dirsRows int
	dirsCols int
	dirsHFOV float64
	dirsVFOV float64
	buf      []DepthReturn // returned slice backing, reused across frames
	cand     []int32       // candidate tree indices for one soft raycast
	seen     []uint32      // per-tree visit stamps (dedupe across grid cells)
	stamp    uint32

	// Column-bundle scratch for the fast capture kernel (fastcapture.go):
	// flat per-column candidate lists plus their offsets, and building
	// visit stamps (trees reuse seen/stamp above).
	seenB   []uint32
	colTree []int32
	colBld  []int32
	colOff  []int32
}

// SetOverlay attaches a fleet overlay; self is this drone's fleet member
// ID, excluded from every query. A nil overlay (the default) keeps the
// solo-engine capture path bit for bit.
func (d *DepthCamera) SetOverlay(ov *Overlay, self int32) {
	d.ov = ov
	d.self = self
}

// NewDepthCamera returns a D435-like sensor model.
func NewDepthCamera(seed int64) *DepthCamera {
	return &DepthCamera{
		HFOV:     1.5, // ~86 degrees
		VFOV:     1.0, // ~57 degrees
		Cols:     16,
		Rows:     10,
		MaxRange: 10,
		NoiseStd: 0.05,
		rng:      rand.New(rand.NewSource(seed)),
	}
}

// DepthReturn is one depth pixel: a body-frame point (x forward, y left,
// z up) and whether it is a real surface return (false = max-range miss,
// point is at max range along the ray).
type DepthReturn struct {
	Point geom.Vec3
	Hit   bool
}

// rayFan returns the cached body-frame ray directions, rebuilding the
// table when the fan geometry changed. The per-direction expressions match
// the historical per-frame computation exactly, so the cached fan is
// bit-identical to recomputing it.
func (d *DepthCamera) rayFan() []geom.Vec3 {
	if d.dirs != nil && d.dirsRows == d.Rows && d.dirsCols == d.Cols &&
		d.dirsHFOV == d.HFOV && d.dirsVFOV == d.VFOV {
		return d.dirs
	}
	d.dirs = d.dirs[:0]
	for r := 0; r < d.Rows; r++ {
		pitch := (float64(r)/float64(d.Rows-1) - 0.5) * d.VFOV
		for c := 0; c < d.Cols; c++ {
			az := (float64(c)/float64(d.Cols-1) - 0.5) * d.HFOV
			// Body-frame direction, x forward.
			d.dirs = append(d.dirs, geom.V3(
				math.Cos(pitch)*math.Cos(az),
				math.Cos(pitch)*math.Sin(az),
				-math.Sin(pitch),
			))
		}
	}
	d.dirsRows, d.dirsCols = d.Rows, d.Cols
	d.dirsHFOV, d.dirsVFOV = d.HFOV, d.VFOV
	return d.dirs
}

// Capture casts the ray fan from the drone pose and returns body-frame
// returns. Tree canopies are soft: rays may pass the outer half of the
// radius, which is how vehicles end up "trapped within the foliage"
// (paper §II-B) — the obstacle is sensed later than its true extent.
//
// The returned slice is owned by the camera and reused by the next
// Capture; callers that need the points past that must copy them.
func (d *DepthCamera) Capture(w *World, pos geom.Vec3, yaw float64) []DepthReturn {
	if d.Fast && d.ov == nil {
		// The fast kernel has no overlay fold; fleet runs stay on the
		// exact path (the fleet runner never enables Fast anyway).
		if out, ok := d.captureFast(w, pos, yaw); ok {
			return out
		}
		// Preconditions unmet (no index, degenerate fan): exact path below,
		// no RNG consumed yet.
	}
	out := d.buf[:0]
	cy, sy := math.Cos(yaw), math.Sin(yaw)
	for _, bd := range d.rayFan() {
		// World-frame.
		wd := geom.V3(bd.X*cy-bd.Y*sy, bd.X*sy+bd.Y*cy, bd.Z)
		ray := geom.Ray{Origin: pos, Dir: wd}
		t, hit := d.raycastSoft(w, ray)
		// Fleet overlay: other drones intercept the ray like any solid.
		// Folded in after the world raycast so the world's soft-canopy RNG
		// draws are untouched; an empty overlay changes nothing.
		if d.ov != nil {
			if to, ok := d.ov.Raycast(ray, d.MaxRange, d.self); ok && (!hit || to < t) {
				t, hit = to, true
			}
		}
		if !hit {
			out = append(out, DepthReturn{Point: bd.Scale(d.MaxRange), Hit: false})
			continue
		}
		t += d.rng.NormFloat64() * d.NoiseStd
		if t < 0.1 {
			t = 0.1
		}
		out = append(out, DepthReturn{Point: bd.Scale(t), Hit: true})
	}
	// Spurious cluster injection (field profile / state-estimate errors).
	out = d.appendSpurious(out)
	d.buf = out
	return out
}

// raycastSoft is World.Raycast with soft tree canopies: returns from the
// outer 50% of a canopy radius are dropped with 35% probability.
//
// The soft-canopy test consumes one RNG draw per tree whose entry hit is
// nearer than the best hit so far, so the indexed path must visit exactly
// the trees the linear reference visits, in the same order. It does:
// candidate trees are deduplicated and processed in ascending tree index —
// the linear scan order — and trees the traversal prunes are provably
// either ray misses or hits beyond the running best, which consume no RNG
// in the linear scan either.
func (d *DepthCamera) raycastSoft(w *World, ray geom.Ray) (float64, bool) {
	best := math.Inf(1)
	if ray.Dir.Z < -1e-12 {
		tg := -ray.Origin.Z / ray.Dir.Z
		if tg >= 0 && tg <= d.MaxRange {
			best = tg
		}
	}
	ix := w.index
	if ix == nil {
		// Linear reference path.
		for i := range w.Buildings {
			if tb, ok := ray.IntersectAABB(w.Buildings[i], d.MaxRange); ok && tb < best {
				best = tb
			}
		}
		best = d.softTrees(w, ray, best, nil)
		if math.IsInf(best, 1) {
			return 0, false
		}
		return best, true
	}

	// One traversal accumulates the building minimum (duplicate candidate
	// visits cannot change a minimum) and gathers deduplicated candidate
	// trees. The walk must not stop before tmax on the building best alone
	// conservatively pruning trees is only sound against the pre-tree best,
	// which is exactly what the running ground+building best is.
	if len(d.seen) < len(w.Trees) {
		d.seen = make([]uint32, len(w.Trees))
	}
	d.stamp++
	if d.stamp == 0 { // wrapped: stale stamps could collide, reset
		for i := range d.seen {
			d.seen[i] = 0
		}
		d.stamp = 1
	}
	d.cand = d.cand[:0]
	wk, ok := ix.startWalk(ray, d.MaxRange)
	if ok {
		for {
			ci, tEntry, more := wk.next()
			if !more || tEntry > best {
				break
			}
			cell := &ix.cells[ci]
			for _, bi := range cell.buildings {
				if tb, hit := ray.IntersectAABB(w.Buildings[bi], d.MaxRange); hit && tb < best {
					best = tb
				}
			}
			for _, ti := range cell.trees {
				if d.seen[ti] != d.stamp {
					d.seen[ti] = d.stamp
					d.cand = append(d.cand, ti)
				}
			}
		}
	}
	slices.Sort(d.cand)
	best = d.softTrees(w, ray, best, d.cand)
	if math.IsInf(best, 1) {
		return 0, false
	}
	return best, true
}

// softTrees runs the soft-canopy tree loop over the given candidate
// indices (nil = all trees) against the post-building best. This is the
// single implementation both the linear and indexed paths share, which is
// what keeps their RNG consumption identical.
func (d *DepthCamera) softTrees(w *World, ray geom.Ray, best float64, cand []int32) float64 {
	n := len(w.Trees)
	if cand != nil {
		n = len(cand)
	}
	for k := 0; k < n; k++ {
		i := k
		if cand != nil {
			i = int(cand[k])
		}
		tt, ok := w.Trees[i].IntersectRay(ray, d.MaxRange)
		if !ok || tt >= best {
			continue
		}
		// Soft canopy: hit point in the outer shell may be see-through.
		p := ray.At(tt)
		tr := w.Trees[i]
		rr := math.Hypot(p.X-tr.Center.X, p.Y-tr.Center.Y)
		if rr > tr.Radius*0.5 && d.rng.Float64() < 0.35 {
			continue
		}
		best = tt
	}
	return best
}

// ColorCamera captures the downward frame used by marker detection. It
// renders with the TRUE pose (the optics do not care about state
// estimates); the perception stack back-projects with the ESTIMATED pose,
// which is how GPS drift becomes marker-position error.
type ColorCamera struct {
	Intrinsics vision.Camera
	// Fast renders the ground texture from a half-resolution lattice
	// (vision.Scene.FastGround) — part of the tolerance-verified fast
	// engine mode. Markers and occluders stay exact; off (the zero value),
	// frames are bit-identical to the exact renderer.
	Fast bool
	rng  *rand.Rand

	// Reused per-frame capture state: the footprint-filtered sub-world and
	// its per-frame grid index, the scene wrapper, the output frame, and
	// the motion-blur scratch. A camera belongs to one run and must not be
	// shared across goroutines.
	sub       World
	subIndex  spatialIndex
	scene     vision.Scene
	occFn     func(x, y float64) (float64, float64, bool)
	occFreeFn func(x0, y0, x1, y1 float64) bool
	frame     *vision.Image
	blur      *vision.Image
}

// NewColorCamera returns the downward D435i-color-stream stand-in.
func NewColorCamera(seed int64) *ColorCamera {
	return &ColorCamera{Intrinsics: vision.DefaultCamera(), rng: rand.New(rand.NewSource(seed))}
}

// Capture renders a frame from the true pose under the weather's sampled
// conditions.
//
// The returned image is owned by the camera and overwritten by the next
// Capture; callers that need the frame past that must Clone it. (The
// landing system consumes each frame within the tick that produced it.)
func (c *ColorCamera) Capture(w *World, weather Weather, pos geom.Vec3, yaw, speed float64) *vision.Image {
	cam := c.Intrinsics
	cam.Pos = pos
	cam.Yaw = yaw
	// Restrict rendering to the visible footprint (diagonal/2 plus slack).
	radius := cam.GroundFootprint(pos.Z)*0.75 + 3
	w.sceneNearInto(pos, radius, &c.sub)
	c.subIndex.build(&c.sub)
	c.sub.index = &c.subIndex
	c.scene.Ground = vision.GroundTexture{
		Seed:     c.sub.GroundSeed,
		Base:     c.sub.GroundBase,
		Contrast: c.sub.GroundContrast,
	}
	c.scene.Markers = c.sub.Markers
	if c.occFn == nil {
		// Bound once: the method values close over the reused sub-world.
		c.occFn = c.sub.OccluderAt
		c.occFreeFn = c.sub.OccluderFreeRect
	}
	// An empty footprint can never occlude, so skip the per-pixel occluder
	// callback entirely — identical pixels, one indirect call less each.
	// A non-empty footprint still often misses the frame's actual ground
	// rectangle (the filter disk carries corner and slack margin); the
	// renderer culls that case per frame through OccluderFree.
	if len(c.sub.Buildings) == 0 && len(c.sub.Trees) == 0 && len(c.sub.Water) == 0 {
		c.scene.OccluderAt = nil
	} else {
		c.scene.OccluderAt = c.occFn
		c.scene.OccluderFree = c.occFreeFn
	}
	if c.frame == nil || c.frame.W != cam.W || c.frame.H != cam.H {
		c.frame = vision.NewImage(cam.W, cam.H)
		c.blur = vision.NewImage(cam.W, cam.H)
	}
	c.scene.FastGround = c.Fast
	c.scene.RenderInto(cam, c.frame)
	cond := weather.FrameConditions(c.rng, speed)
	cond.ApplyReusing(c.frame, pos.Z, c.rng, c.blur)
	return c.frame
}
