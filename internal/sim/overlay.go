package sim

import (
	"math"

	"repro/internal/geom"
)

// Dynamic overlay
//
// Fleet worlds put several drones into one immutable World. The world's
// spatial index cannot hold them — it is built once and shared read-only
// across campaign workers — so the moving vehicles live in a separate
// per-run Overlay: a small set of dynamic spheres (one per airborne
// drone) rebuilt every lockstep tick from the start-of-tick positions.
//
// The Overlay mirrors the static index's design contract exactly:
//
//   - it is a uniform XY grid (the same gridGeom and rayWalk machinery as
//     index.go) over the sphere footprints, used by the collision and
//     ray queries below;
//   - every gridded query is bit-identical to a linear scan over the
//     sphere list — DropGrid restores the linear reference paths, which
//     the equivalence tests use as the oracle;
//   - queries never consume RNG, so folding an overlay result into a
//     sensor reading after the world query completes leaves the sensor's
//     RNG stream untouched (see DepthCamera.Capture / LidarAlt.Read).
//
// An Overlay belongs to one fleet run and is rebuilt between ticks by the
// single goroutine driving the lockstep loop; it is never shared across
// runs or workers.

// DynamicSphere is one fleet vehicle registered in the overlay: its
// current center, body radius, and the fleet member ID used for
// self-exclusion (a drone must not sense or collide with itself).
type DynamicSphere struct {
	Center geom.Vec3
	Radius float64
	ID     int32
}

// Overlay is the dynamic obstacle layer of a fleet world.
type Overlay struct {
	gridGeom
	spheres []DynamicSphere
	cells   [][]int32 // per-cell sphere indices
	linear  bool      // grid disabled: queries scan the sphere list
}

// NewOverlay returns an empty overlay.
func NewOverlay() *Overlay { return &Overlay{} }

// DropGrid disables the uniform grid, restoring the linear-scan reference
// paths. The overlay equivalence tests use it as the oracle, exactly like
// World.DropIndex for the static index.
func (ov *Overlay) DropGrid() { ov.linear = true }

// Reset clears the sphere set for the next lockstep tick, keeping the
// backing storage so steady-state rebuilds are allocation-free.
func (ov *Overlay) Reset() { ov.spheres = ov.spheres[:0] }

// Len returns the number of registered spheres.
func (ov *Overlay) Len() int { return len(ov.spheres) }

// Add registers one vehicle sphere. Call Rebuild after the last Add of a
// tick; queries between Add and Rebuild see the previous tick's grid.
func (ov *Overlay) Add(id int32, center geom.Vec3, radius float64) {
	ov.spheres = append(ov.spheres, DynamicSphere{Center: center, Radius: radius, ID: id})
}

// Rebuild reconstructs the grid over the current sphere set, reusing cell
// storage. With the grid dropped it is a no-op (queries stay linear).
func (ov *Overlay) Rebuild() {
	if ov.linear || len(ov.spheres) == 0 {
		ov.nx, ov.ny = 0, 0
		return
	}

	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for i := range ov.spheres {
		s := &ov.spheres[i]
		minX = math.Min(minX, s.Center.X-s.Radius)
		minY = math.Min(minY, s.Center.Y-s.Radius)
		maxX = math.Max(maxX, s.Center.X+s.Radius)
		maxY = math.Max(maxY, s.Center.Y+s.Radius)
	}
	minX -= indexPad
	minY -= indexPad
	maxX += indexPad
	maxY += indexPad

	// Fleets are small (tens of spheres), so the grid stays coarse: a few
	// spheres per cell beats a long walk across many near-empty cells.
	extent := math.Max(maxX-minX, maxY-minY)
	cell := extent / 8
	if cell < 3 {
		cell = 3
	} else if cell > 15 {
		cell = 15
	}
	nx := int(math.Ceil((maxX - minX) / cell))
	ny := int(math.Ceil((maxY - minY) / cell))
	if nx < 1 {
		nx = 1
	}
	if ny < 1 {
		ny = 1
	}

	ov.minX, ov.minY = minX, minY
	ov.cell, ov.invCell = cell, 1/cell
	ov.nx, ov.ny = nx, ny
	if cap(ov.cells) < nx*ny {
		ov.cells = make([][]int32, nx*ny)
	} else {
		ov.cells = ov.cells[:nx*ny]
		for i := range ov.cells {
			ov.cells[i] = ov.cells[i][:0]
		}
	}
	for i := range ov.spheres {
		s := &ov.spheres[i]
		cx0, cy0 := ov.cellCoord(s.Center.X-s.Radius-indexPad, s.Center.Y-s.Radius-indexPad)
		cx1, cy1 := ov.cellCoord(s.Center.X+s.Radius+indexPad, s.Center.Y+s.Radius+indexPad)
		for cy := cy0; cy <= cy1; cy++ {
			for cx := cx0; cx <= cx1; cx++ {
				ov.cells[cy*ov.nx+cx] = append(ov.cells[cy*ov.nx+cx], int32(i))
			}
		}
	}
}

// Hit reports whether a sphere at c with radius r overlaps any registered
// vehicle other than exclude — the drone-drone half of the fleet
// collision check. Duplicate candidate visits cannot change an
// any-overlap answer, so no deduplication is needed.
func (ov *Overlay) Hit(c geom.Vec3, r float64, exclude int32) bool {
	if len(ov.spheres) == 0 {
		return false
	}
	if ov.nx == 0 {
		for i := range ov.spheres {
			s := &ov.spheres[i]
			if s.ID != exclude && c.DistSq(s.Center) <= (r+s.Radius)*(r+s.Radius) {
				return true
			}
		}
		return false
	}
	cx0, cy0, cx1, cy1, ok := ov.cellRange(c.X-r, c.Y-r, c.X+r, c.Y+r)
	if !ok {
		return false
	}
	for cy := cy0; cy <= cy1; cy++ {
		for cx := cx0; cx <= cx1; cx++ {
			for _, si := range ov.cells[cy*ov.nx+cx] {
				s := &ov.spheres[si]
				if s.ID != exclude && c.DistSq(s.Center) <= (r+s.Radius)*(r+s.Radius) {
					return true
				}
			}
		}
	}
	return false
}

// Raycast returns the nearest intersection parameter of ray with any
// registered vehicle other than exclude, within tmax. hit is false when
// no vehicle is struck. Duplicates cannot change a minimum, and cells
// whose entry parameter exceeds the running best are skipped — the same
// pruning argument as the static index's raycastObstacles.
func (ov *Overlay) Raycast(ray geom.Ray, tmax float64, exclude int32) (t float64, hit bool) {
	if len(ov.spheres) == 0 {
		return 0, false
	}
	best := math.Inf(1)
	if ov.nx == 0 {
		for i := range ov.spheres {
			s := &ov.spheres[i]
			if s.ID == exclude {
				continue
			}
			if ts, ok := ray.IntersectSphere(s.Center, s.Radius, tmax); ok && ts < best {
				best = ts
			}
		}
	} else {
		wk, ok := ov.startWalk(ray, tmax)
		if ok {
			for {
				ci, tEntry, more := wk.next()
				if !more || tEntry > best {
					break
				}
				for _, si := range ov.cells[ci] {
					s := &ov.spheres[si]
					if s.ID == exclude {
						continue
					}
					if ts, ok := ray.IntersectSphere(s.Center, s.Radius, tmax); ok && ts < best {
						best = ts
					}
				}
			}
		}
	}
	if math.IsInf(best, 1) {
		return 0, false
	}
	return best, true
}
