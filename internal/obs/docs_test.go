package obs_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/coord"
	"repro/internal/obs"

	// Metric registration happens in package init; pull in every
	// instrumented layer so Describe() sees the full production catalog.
	_ "repro/internal/campaign"
	_ "repro/internal/scenario"
	_ "repro/internal/worldgen"
)

// docs_test verifies docs/observability.md against the implementation
// so the reference cannot drift from the code: the metric table must
// match obs.Describe() field by field, the event-kind table must match
// obs.EventKinds(), and the upload-reject reason list must cover
// coord.RejectReasons.

func readObsDoc(t *testing.T) string {
	t.Helper()
	b, err := os.ReadFile(filepath.Join("..", "..", "docs", "observability.md"))
	if err != nil {
		t.Fatalf("docs/observability.md unreadable: %v", err)
	}
	return string(b)
}

// tableRows extracts `| `name` | a | b | c |` rows keyed by the
// backticked first cell.
func tableRows(doc string, columns int) map[string][]string {
	rows := map[string][]string{}
	for _, line := range strings.Split(doc, "\n") {
		line = strings.TrimSpace(line)
		if !strings.HasPrefix(line, "| `") {
			continue
		}
		cells := strings.Split(strings.Trim(line, "|"), "|")
		for i := range cells {
			cells[i] = strings.TrimSpace(cells[i])
		}
		if len(cells) != columns {
			continue
		}
		rows[strings.Trim(cells[0], "`")] = cells[1:]
	}
	return rows
}

func TestDocsMetricTableMatchesDescribe(t *testing.T) {
	doc := readObsDoc(t)
	rows := tableRows(doc, 4)
	// The obs unit tests register throwaway series on Default (the
	// package-level conveniences have no other registry); only the
	// production catalog is documented.
	var descs []obs.Desc
	for _, d := range obs.Describe() {
		if !strings.HasPrefix(d.Name, "test_") {
			descs = append(descs, d)
		}
	}
	for _, d := range descs {
		row, ok := rows[d.Name]
		if !ok {
			t.Errorf("docs metric table is missing %q", d.Name)
			continue
		}
		want := []string{string(d.Type), d.Unit, d.Help}
		for i, w := range want {
			if row[i] != w {
				t.Errorf("docs metric table %s column %d: %q, code says %q", d.Name, i+1, row[i], w)
			}
		}
		// Labeled families must document every pre-registered value.
		if d.Label != "" {
			if !strings.Contains(doc, "`"+d.Label+"`") {
				t.Errorf("docs never name the %q label of %s", d.Label, d.Name)
			}
			for _, v := range d.LabelValues {
				if !strings.Contains(doc, "- `"+v+"` —") {
					t.Errorf("docs are missing the %q bullet for %s{%s}", v, d.Name, d.Label)
				}
			}
		}
	}
	// Bound stale rows: metric rows and event rows share the `| `x` |`
	// shape but differ in arity (4 vs 4)... so count by known names.
	known := map[string]bool{}
	for _, d := range descs {
		known[d.Name] = true
	}
	for _, k := range obs.EventKinds() {
		known[k.Kind] = true
	}
	for name := range rows {
		if !known[name] {
			t.Errorf("docs table documents %q, which the code does not register", name)
		}
	}
}

func TestDocsEventTableMatchesEventKinds(t *testing.T) {
	doc := readObsDoc(t)
	rows := tableRows(doc, 4)
	for _, k := range obs.EventKinds() {
		row, ok := rows[k.Kind]
		if !ok {
			t.Errorf("docs event table is missing %q", k.Kind)
			continue
		}
		shape := "point"
		if k.Phased {
			shape = "windowed"
		}
		want := []string{k.Detail, shape, k.Help}
		for i, w := range want {
			if row[i] != w {
				t.Errorf("docs event table %s column %d: %q, code says %q", k.Kind, i+1, row[i], w)
			}
		}
	}
}

func TestDocsRejectReasonsMatchCoord(t *testing.T) {
	doc := readObsDoc(t)
	// The reason bullets live between the catalog table and the next
	// heading; extract that section so flag bullets elsewhere don't
	// shadow stale entries.
	start := strings.Index(doc, "upload path can hit them")
	if start < 0 {
		t.Fatal("docs lost the reject-reason list preamble")
	}
	section := doc[start:]
	if end := strings.Index(section, "\n#"); end >= 0 {
		section = section[:end]
	}
	live := map[string]bool{}
	for _, reason := range coord.RejectReasons {
		live[reason] = true
		if !strings.Contains(section, "- `"+reason+"` —") {
			t.Errorf("docs reject-reason list is missing %q", reason)
		}
	}
	for _, line := range strings.Split(section, "\n") {
		line = strings.TrimSpace(line)
		if !strings.HasPrefix(line, "- `") {
			continue
		}
		name := line[len("- `"):]
		if i := strings.IndexByte(name, '`'); i >= 0 {
			name = name[:i]
		}
		if !live[name] {
			t.Errorf("docs document reject reason %q, which the code does not use", name)
		}
	}
}
