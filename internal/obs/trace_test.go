package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestTraceRing(t *testing.T) {
	tr := NewTrace(3)
	for i := 0; i < 5; i++ {
		tr.Record(Event{Tick: i, Kind: "capture"})
	}
	evs := tr.Events()
	if len(evs) != 3 || tr.Dropped() != 2 {
		t.Fatalf("events=%d dropped=%d, want 3/2", len(evs), tr.Dropped())
	}
	for i, ev := range evs {
		if ev.Tick != i+2 {
			t.Fatalf("event %d tick = %d, want %d (oldest-first ring order)", i, ev.Tick, i+2)
		}
	}
}

func TestEventJSONFieldOrder(t *testing.T) {
	ev := Event{Tick: 3, T: 0.15, Member: 1, Kind: "fault", Detail: "gps-drift", Phase: PhaseEnter, Value: 2}
	b, err := json.Marshal(ev)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"tick":3,"t":0.15,"member":1,"kind":"fault","detail":"gps-drift","phase":"enter","value":2}`
	if string(b) != want {
		t.Fatalf("canonical encoding changed:\n got %s\nwant %s", b, want)
	}
	// Zero member/detail/phase/value are omitted — a solo trace and
	// fleet member 0's trace encode identically.
	b, _ = json.Marshal(Event{Tick: 0, T: 0.05, Kind: "end", Detail: "success"})
	if string(b) != `{"tick":0,"t":0.05,"kind":"end","detail":"success"}` {
		t.Fatalf("omitempty encoding changed: %s", b)
	}
}

func TestEventKindsCatalogClosed(t *testing.T) {
	seen := map[string]bool{}
	for _, k := range EventKinds() {
		if k.Kind == "" || k.Help == "" || k.Detail == "" {
			t.Fatalf("catalog entry %+v incomplete", k)
		}
		if seen[k.Kind] {
			t.Fatalf("duplicate kind %q", k.Kind)
		}
		if k.Kind == runHeaderKind {
			t.Fatalf("event kind %q collides with the run-header framing", k.Kind)
		}
		seen[k.Kind] = true
	}
}

func writeTrace(t *testing.T, hdr RunHeader, evs []Event, dropped int) string {
	t.Helper()
	var b strings.Builder
	if err := WriteRunTrace(&b, hdr, evs, dropped); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestCheckTraceValid(t *testing.T) {
	evs := []Event{
		{Tick: 0, T: 0.05, Kind: "capture", Detail: "depth+frame"},
		{Tick: 0, T: 0.05, Kind: "apply", Detail: "depth+frame"},
		{Tick: 2, T: 0.1, Kind: "fault", Detail: "gps-drift", Phase: PhaseEnter},
		{Tick: 2, T: 0.1, Kind: "degraded", Phase: PhaseEnter},
		{Tick: 4, T: 0.2, Kind: "plan-request"},
		{Tick: 6, T: 0.3, Kind: "plan-deliver", Detail: "applied"},
		{Tick: 8, T: 0.4, Kind: "fault", Detail: "gps-drift", Phase: PhaseExit},
		{Tick: 8, T: 0.4, Kind: "degraded", Phase: PhaseExit},
		{Tick: 9, T: 0.45, Kind: "end", Detail: "success"},
	}
	text := writeTrace(t, RunHeader{Run: 0, Gen: "V3", Map: 1, Sc: 2, Seed: 42}, evs, 0)
	var out strings.Builder
	stats, err := CheckTrace(strings.NewReader(text), CheckOptions{Timeline: true, Out: &out})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Violations != 0 {
		t.Fatalf("violations in a valid trace:\n%s", out.String())
	}
	if stats.Runs != 1 || stats.Events != len(evs) {
		t.Fatalf("stats = %+v", stats)
	}
	for _, want := range []string{"run 0 gen=V3", "FAULT", "gps-drift", "t=   0.45s"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("timeline missing %q:\n%s", want, out.String())
		}
	}
}

func TestCheckTraceViolations(t *testing.T) {
	cases := map[string][]Event{
		"tick backwards": {
			{Tick: 5, Kind: "capture", Detail: "depth"},
			{Tick: 3, Kind: "end", Detail: "success"},
		},
		"double enter": {
			{Tick: 1, Kind: "fault", Detail: "wind", Phase: PhaseEnter},
			{Tick: 2, Kind: "fault", Detail: "wind", Phase: PhaseEnter},
		},
		"exit without enter": {
			{Tick: 1, Kind: "blackout", Phase: PhaseExit},
		},
		"event after end": {
			{Tick: 1, Kind: "end", Detail: "success"},
			{Tick: 2, Kind: "capture", Detail: "depth"},
		},
		"abort not terminal": {
			{Tick: 1, Kind: "abort", Detail: "battery"},
			{Tick: 2, Kind: "capture", Detail: "depth"},
			{Tick: 2, Kind: "end", Detail: "aborted"},
		},
		"unknown kind": {
			{Tick: 1, Kind: "mystery"},
		},
		"phase on point kind": {
			{Tick: 1, Kind: "capture", Detail: "depth", Phase: PhaseEnter},
		},
		"windowed without phase": {
			{Tick: 1, Kind: "blackout"},
		},
	}
	for name, evs := range cases {
		t.Run(name, func(t *testing.T) {
			text := writeTrace(t, RunHeader{Run: 0, Gen: "V3"}, evs, 0)
			stats, err := CheckTrace(strings.NewReader(text), CheckOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if stats.Violations == 0 {
				t.Fatalf("%s: expected a violation", name)
			}
		})
	}
}

func TestCheckTraceHeaderCount(t *testing.T) {
	// Header declares 2 events but the block has 1.
	text := `{"kind":"run","run":0,"gen":"V3","map":0,"sc":0,"rep":0,"seed":1,"events":2}
{"tick":0,"t":0.05,"kind":"end","detail":"success"}
`
	stats, err := CheckTrace(strings.NewReader(text), CheckOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Violations != 1 {
		t.Fatalf("violations = %d, want 1 (declared-count mismatch)", stats.Violations)
	}
	// With drops, the count check is waived.
	text = `{"kind":"run","run":0,"gen":"V3","map":0,"sc":0,"rep":0,"seed":1,"events":2,"dropped":3}
{"tick":0,"t":0.05,"kind":"end","detail":"success"}
`
	stats, err = CheckTrace(strings.NewReader(text), CheckOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Violations != 0 {
		t.Fatalf("violations = %d, want 0 under drops", stats.Violations)
	}
}

func TestCheckTraceBareStreamAndMembers(t *testing.T) {
	// A bare event stream (no header) checks as one anonymous run, and
	// member streams validate independently.
	var b strings.Builder
	for _, ev := range []Event{
		{Tick: 4, Kind: "capture", Detail: "depth", Member: 1},
		{Tick: 2, Kind: "capture", Detail: "depth", Member: 2},
		{Tick: 5, Kind: "end", Detail: "success", Member: 1},
		{Tick: 5, Kind: "end", Detail: "success", Member: 2},
	} {
		line, err := json.Marshal(ev)
		if err != nil {
			t.Fatal(err)
		}
		b.Write(line)
		b.WriteByte('\n')
	}
	stats, err := CheckTrace(strings.NewReader(b.String()), CheckOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Runs != 0 || stats.Events != 4 || stats.Violations != 0 {
		t.Fatalf("stats = %+v, want 0 runs / 4 events / 0 violations", stats)
	}
}

func TestCheckTraceMalformed(t *testing.T) {
	if _, err := CheckTrace(strings.NewReader("not json\n"), CheckOptions{}); err == nil {
		t.Fatal("malformed line should error")
	}
}
