package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// CheckStats summarizes one CheckTrace pass.
type CheckStats struct {
	// Runs is the number of run-header lines seen (0 for a bare event
	// stream, which is checked as one anonymous run).
	Runs int
	// Events is the total event-line count.
	Events int
	// Violations is the number of invariant violations found.
	Violations int
}

// pairKey identifies one open enter/exit window.
type pairKey struct {
	member int
	kind   string
	detail string
}

// runChecker validates the ordering invariants of one run's event stream:
//
//   - per member, ticks are monotone non-decreasing;
//   - windowed kinds (Phased in EventKinds) emit matched enter/exit
//     pairs — no exit without enter, no double enter (a window may stay
//     open at mission end);
//   - "end" is terminal and unique per member, and an "abort" is
//     followed only by that member's "end";
//   - every kind is in the EventKinds catalog.
type runChecker struct {
	lastTick map[int]int
	open     map[pairKey]bool
	aborted  map[int]bool
	ended    map[int]bool
	events   int
}

func newRunChecker() *runChecker {
	return &runChecker{
		lastTick: make(map[int]int),
		open:     make(map[pairKey]bool),
		aborted:  make(map[int]bool),
		ended:    make(map[int]bool),
	}
}

// kindCatalog indexes EventKinds by kind name.
var kindCatalog = func() map[string]EventKind {
	m := make(map[string]EventKind)
	for _, k := range EventKinds() {
		m[k.Kind] = k
	}
	return m
}()

// check validates one event against the run's accumulated state and
// returns the violations it introduces.
func (c *runChecker) check(line int, ev Event) []string {
	c.events++
	var out []string
	fail := func(format string, args ...any) {
		out = append(out, fmt.Sprintf("line %d: %s", line, fmt.Sprintf(format, args...)))
	}
	info, known := kindCatalog[ev.Kind]
	if !known {
		fail("unknown event kind %q", ev.Kind)
		return out
	}
	if last, seen := c.lastTick[ev.Member]; seen && ev.Tick < last {
		fail("member %d tick went backwards: %d after %d", ev.Member, ev.Tick, last)
	}
	c.lastTick[ev.Member] = ev.Tick
	if c.ended[ev.Member] {
		fail("member %d event %q after its end event", ev.Member, ev.Kind)
	} else if c.aborted[ev.Member] && ev.Kind != "end" {
		fail("member %d event %q between abort and end", ev.Member, ev.Kind)
	}
	switch {
	case info.Phased:
		key := pairKey{member: ev.Member, kind: ev.Kind, detail: ev.Detail}
		switch ev.Phase {
		case PhaseEnter:
			if c.open[key] {
				fail("member %d double enter of %s/%s", ev.Member, ev.Kind, ev.Detail)
			}
			c.open[key] = true
		case PhaseExit:
			if !c.open[key] {
				fail("member %d exit of %s/%s without enter", ev.Member, ev.Kind, ev.Detail)
			}
			delete(c.open, key)
		default:
			fail("member %d windowed kind %q needs phase enter or exit, got %q", ev.Member, ev.Kind, ev.Phase)
		}
	case ev.Phase != "":
		fail("member %d point kind %q carries phase %q", ev.Member, ev.Kind, ev.Phase)
	case ev.Kind == "abort":
		c.aborted[ev.Member] = true
	case ev.Kind == "end":
		c.ended[ev.Member] = true
	}
	return out
}

// CheckOptions configures CheckTrace output.
type CheckOptions struct {
	// Timeline prints a human-readable per-run event timeline to Out
	// (telemetry.FormatFaultTimeline's style).
	Timeline bool
	// Out receives the timeline and violation report; nil discards it.
	Out io.Writer
}

// CheckTrace reads a JSONL trace (run headers framing per-run event
// blocks, or a bare event stream) and validates the flight-recorder
// ordering invariants. It returns the pass summary; violations are also
// written to opts.Out.
func CheckTrace(r io.Reader, opts CheckOptions) (CheckStats, error) {
	out := opts.Out
	if out == nil {
		out = io.Discard
	}
	var stats CheckStats
	var checker *runChecker
	var violations []string
	var declared int
	flush := func() {
		if checker == nil {
			return
		}
		if declared >= 0 && checker.events != declared {
			violations = append(violations, fmt.Sprintf(
				"run header declared %d events, block has %d", declared, checker.events))
		}
		checker = nil
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		raw := strings.TrimSpace(sc.Text())
		if raw == "" {
			continue
		}
		var probe struct {
			Kind string `json:"kind"`
		}
		if err := json.Unmarshal([]byte(raw), &probe); err != nil {
			return stats, fmt.Errorf("line %d: %w", line, err)
		}
		if probe.Kind == runHeaderKind {
			flush()
			var hdr RunHeader
			if err := json.Unmarshal([]byte(raw), &hdr); err != nil {
				return stats, fmt.Errorf("line %d: %w", line, err)
			}
			stats.Runs++
			checker = newRunChecker()
			declared = hdr.Events
			if hdr.Dropped > 0 {
				// A saturated ring loses the block's oldest events:
				// enter/exit pairing and the declared count no longer
				// hold, so only per-line checks apply.
				declared = -1
			}
			if opts.Timeline {
				fmt.Fprintf(out, "run %d gen=%s map=%d sc=%d rep=%d seed=%d (%d events",
					hdr.Run, hdr.Gen, hdr.Map, hdr.Sc, hdr.Rep, hdr.Seed, hdr.Events)
				if hdr.Dropped > 0 {
					fmt.Fprintf(out, ", %d dropped", hdr.Dropped)
				}
				fmt.Fprintf(out, ")\n")
			}
			continue
		}
		var ev Event
		if err := json.Unmarshal([]byte(raw), &ev); err != nil {
			return stats, fmt.Errorf("line %d: %w", line, err)
		}
		stats.Events++
		if checker == nil {
			// Bare event stream: check it as one anonymous run.
			checker = newRunChecker()
			declared = -1
		}
		violations = append(violations, checker.check(line, ev)...)
		if opts.Timeline {
			fmt.Fprintf(out, "  %s\n", FormatEvent(ev))
		}
	}
	if err := sc.Err(); err != nil {
		return stats, err
	}
	flush()
	stats.Violations = len(violations)
	for _, v := range violations {
		fmt.Fprintf(out, "VIOLATION %s\n", v)
	}
	return stats, nil
}

// FormatEvent renders one event in the fault-timeline style
// ("t=%7.2fs  ..."), one line, no trailing newline.
func FormatEvent(ev Event) string {
	var b strings.Builder
	fmt.Fprintf(&b, "t=%7.2fs  tick %5d", ev.T, ev.Tick)
	if ev.Member != 0 {
		fmt.Fprintf(&b, "  [m%d]", ev.Member)
	}
	word := ev.Kind
	if ev.Phase == PhaseEnter {
		word = strings.ToUpper(ev.Kind)
	}
	fmt.Fprintf(&b, "  %-12s", word)
	if ev.Phase != "" {
		fmt.Fprintf(&b, " %-5s", ev.Phase)
	}
	if ev.Detail != "" {
		fmt.Fprintf(&b, " %s", ev.Detail)
	}
	if ev.Value != 0 {
		fmt.Fprintf(&b, " (%g)", ev.Value)
	}
	return strings.TrimRight(b.String(), " ")
}
