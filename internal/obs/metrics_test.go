package obs

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("test_ops_total", "ops", "test counter")
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.NewGauge("test_level", "items", "test gauge")
	g.Set(7)
	g.Add(-2)
	if got := g.Load(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("test_duration_seconds", "s", "test histogram", []float64{1, 2, 5})
	for _, v := range []float64{0.5, 1.5, 1.5, 3, 10} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 16.5 {
		t.Fatalf("sum = %g, want 16.5", h.Sum())
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP test_duration_seconds test histogram (unit: s)
# TYPE test_duration_seconds histogram
test_duration_seconds_bucket{le="1"} 1
test_duration_seconds_bucket{le="2"} 3
test_duration_seconds_bucket{le="5"} 4
test_duration_seconds_bucket{le="+Inf"} 5
test_duration_seconds_sum 16.5
test_duration_seconds_count 5
`
	if b.String() != want {
		t.Fatalf("exposition mismatch:\n got: %q\nwant: %q", b.String(), want)
	}
}

func TestCounterVec(t *testing.T) {
	r := NewRegistry()
	v := r.NewCounterVec("test_rejects_total", "uploads", "test vec", "reason", []string{"late", "conflict"})
	v.With("late").Inc()
	v.With("late").Inc()
	v.With("conflict").Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	// Values sort for canonical exposition.
	want := `# HELP test_rejects_total test vec (unit: uploads)
# TYPE test_rejects_total counter
test_rejects_total{reason="conflict"} 1
test_rejects_total{reason="late"} 2
`
	if b.String() != want {
		t.Fatalf("exposition mismatch:\n got: %q\nwant: %q", b.String(), want)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("With on an unregistered label value should panic")
		}
	}()
	v.With("unknown")
}

func TestFuncMetricsAndDescribe(t *testing.T) {
	r := NewRegistry()
	r.NewCounterFunc("test_mirror_total", "hits", "mirrored counter", func() int64 { return 42 })
	r.NewGaugeFunc(("test_resident"), "worlds", "mirrored gauge", func() int64 { return 3 })
	r.NewCounter("test_a_total", "ops", "sorts first")
	descs := r.Describe()
	if len(descs) != 3 {
		t.Fatalf("Describe len = %d, want 3", len(descs))
	}
	for i := 1; i < len(descs); i++ {
		if descs[i-1].Name >= descs[i].Name {
			t.Fatalf("Describe not sorted: %q before %q", descs[i-1].Name, descs[i].Name)
		}
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"test_mirror_total 42\n", "test_resident 3\n"} {
		if !strings.Contains(b.String(), want) {
			t.Fatalf("exposition missing %q:\n%s", want, b.String())
		}
	}
}

func TestDeterministicSnapshot(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("test_b_total", "ops", "b").Add(2)
	r.NewCounter("test_a_total", "ops", "a").Add(1)
	r.NewGauge("test_c", "items", "c").Set(9)
	var b1, b2 strings.Builder
	if err := r.WritePrometheus(&b1); err != nil {
		t.Fatal(err)
	}
	if err := r.WritePrometheus(&b2); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Fatal("two snapshots of identical state differ")
	}
	if !strings.Contains(b1.String(), "test_a_total 1\n# HELP test_b_total") {
		t.Fatalf("names not sorted:\n%s", b1.String())
	}
}

func TestRegistrationPanics(t *testing.T) {
	cases := map[string]func(r *Registry){
		"duplicate": func(r *Registry) {
			r.NewCounter("test_dup_total", "ops", "x")
			r.NewCounter("test_dup_total", "ops", "x")
		},
		"bad name":      func(r *Registry) { r.NewCounter("Bad-Name", "ops", "x") },
		"empty name":    func(r *Registry) { r.NewCounter("", "ops", "x") },
		"digit start":   func(r *Registry) { r.NewCounter("1bad", "ops", "x") },
		"vec no label":  func(r *Registry) { r.NewCounterVec("test_v_total", "x", "x", "", nil) },
		"vec dup value": func(r *Registry) { r.NewCounterVec("test_v_total", "x", "x", "k", []string{"a", "a"}) },
		"hist bounds":   func(r *Registry) { r.NewHistogram("test_h", "s", "x", []float64{2, 1}) },
	}
	for name, fn := range cases {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: want panic", name)
				}
			}()
			fn(NewRegistry())
		})
	}
}

// TestConcurrentIncrements is the -race stress for the hot-path contract:
// many goroutines hammering the same counters, gauges, histograms, and
// vec series while snapshots run concurrently.
func TestConcurrentIncrements(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("test_ops_total", "ops", "x")
	g := r.NewGauge("test_level", "items", "x")
	h := r.NewHistogram("test_lat", "s", "x", []float64{1, 10, 100})
	v := r.NewCounterVec("test_tag_total", "ops", "x", "tag", []string{"a", "b"})
	const workers = 8
	const per = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i % 200))
				if w%2 == 0 {
					v.With("a").Inc()
				} else {
					v.With("b").Inc()
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var b strings.Builder
			if err := r.WritePrometheus(&b); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	<-done
	if c.Load() != workers*per {
		t.Fatalf("counter = %d, want %d", c.Load(), workers*per)
	}
	if h.Count() != workers*per {
		t.Fatalf("histogram count = %d, want %d", h.Count(), workers*per)
	}
	if v.With("a").Load()+v.With("b").Load() != workers*per {
		t.Fatalf("vec total = %d, want %d", v.With("a").Load()+v.With("b").Load(), workers*per)
	}
}

func TestHandlerAndDebugMux(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("test_ops_total", "ops", "x").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if got := rec.Header().Get("Content-Type"); !strings.HasPrefix(got, "text/plain; version=0.0.4") {
		t.Fatalf("content type = %q", got)
	}
	if !strings.Contains(rec.Body.String(), "test_ops_total 1") {
		t.Fatalf("body missing counter:\n%s", rec.Body.String())
	}
	// DebugMux serves the Default registry plus pprof.
	mux := DebugMux()
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("GET /metrics = %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/cmdline", nil))
	if rec.Code != 200 {
		t.Fatalf("GET /debug/pprof/cmdline = %d", rec.Code)
	}
}
