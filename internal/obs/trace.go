package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// Event is one flight-recorder entry: a tick-stamped structured record of
// something the mission runner observed. Events derive only from
// already-deterministic simulation state (tick index, simulated time,
// fault/plan/separation state) — never from wall clocks or goroutine
// interleaving — so the trace of a run is a pure function of
// (seed, Spec) and byte-identical at any worker count.
//
// JSON field order is fixed by the struct; encoding/json emits struct
// fields in declaration order, which makes the JSONL encoding canonical.
type Event struct {
	// Tick is the control-loop tick index the event was recorded at.
	Tick int `json:"tick"`
	// T is the simulated time in seconds. For fault edges this is the
	// plan's window edge time, which may lead Tick's time by a fraction
	// of a tick.
	T float64 `json:"t"`
	// Member is the fleet member index (0, the solo drone, is omitted —
	// a solo trace and fleet member 0's trace are identical).
	Member int `json:"member,omitempty"`
	// Kind is the event kind; EventKinds enumerates the closed set.
	Kind string `json:"kind"`
	// Detail refines the kind (fault kind, capture payload, plan
	// disposition, separation band, abort cause, outcome).
	Detail string `json:"detail,omitempty"`
	// Phase is "enter" or "exit" for windowed kinds (fault, blackout,
	// degraded), empty for point events.
	Phase string `json:"phase,omitempty"`
	// Value carries a kind-specific number (apply: delivery lag in
	// ticks; separation: the other member's index).
	Value float64 `json:"value,omitempty"`
}

// Phase values of windowed event kinds.
const (
	PhaseEnter = "enter"
	PhaseExit  = "exit"
)

// Recorder receives flight-recorder events. The runner records only from
// the mission's control-loop goroutine, so implementations need not be
// goroutine-safe. A nil Recorder (the default) keeps the runner on its
// untraced hot path: one pointer check per site, no allocations.
type Recorder interface {
	Record(Event)
}

// Trace is a bounded flight recorder: a ring buffer that keeps the most
// recent capacity events and counts the overwritten rest. Not
// goroutine-safe (see Recorder).
type Trace struct {
	buf     []Event
	start   int
	n       int
	dropped int
}

// NewTrace returns a recorder keeping the last capacity events.
func NewTrace(capacity int) *Trace {
	if capacity < 1 {
		capacity = 1
	}
	return &Trace{buf: make([]Event, capacity)}
}

// Record appends ev, overwriting the oldest event when full.
func (t *Trace) Record(ev Event) {
	if t.n < len(t.buf) {
		t.buf[(t.start+t.n)%len(t.buf)] = ev
		t.n++
		return
	}
	t.buf[t.start] = ev
	t.start = (t.start + 1) % len(t.buf)
	t.dropped++
}

// Events returns the retained events, oldest first.
func (t *Trace) Events() []Event {
	out := make([]Event, t.n)
	for i := 0; i < t.n; i++ {
		out[i] = t.buf[(t.start+i)%len(t.buf)]
	}
	return out
}

// Dropped reports how many events were overwritten.
func (t *Trace) Dropped() int { return t.dropped }

// EventKind documents one flight-recorder event kind for the catalog
// (docs/observability.md is drift-guarded against EventKinds).
type EventKind struct {
	// Kind is the Event.Kind value.
	Kind string
	// Detail documents the Detail field's contents ("-" when unused).
	Detail string
	// Phased kinds emit matched enter/exit pairs via Phase (a mission
	// may terminate with a window still open).
	Phased bool
	// Help is the one-line description.
	Help string
}

// EventKinds returns the closed catalog of event kinds, in the order a
// mission can first emit them.
func EventKinds() []EventKind {
	return []EventKind{
		{Kind: "fault", Detail: "fault kind", Phased: true,
			Help: "an injected fault window activated or cleared at the simulation boundary"},
		{Kind: "blackout", Detail: "-", Phased: true,
			Help: "comms blackout hold: commands frozen at the last pre-blackout value"},
		{Kind: "degraded", Detail: "-", Phased: true,
			Help: "the injector reports the mission degraded (any active fault window)"},
		{Kind: "capture", Detail: "depth, frame, or depth+frame",
			Help: "perception capture submitted for the sensors due this tick (recorded before fault dropouts apply)"},
		{Kind: "apply", Detail: "depth, frame, depth+frame, or none",
			Help: "perception result applied to the control epoch; value is the delivery lag in ticks (0 inline, k pipelined)"},
		{Kind: "plan-request", Detail: "-",
			Help: "asynchronous replan submitted to the staged planner"},
		{Kind: "plan-deliver", Detail: "applied, fallback, or failsafe",
			Help: "staged plan delivered to the flight system and its disposition"},
		{Kind: "plan-stale", Detail: "-",
			Help: "staged plan dropped: the flight state changed between request and delivery"},
		{Kind: "plan-abandon", Detail: "-",
			Help: "staged plan discarded because it came due during a comms blackout"},
		{Kind: "separation", Detail: "near-miss or violation",
			Help: "a fleet pair tightened its separation band; value is the other member's index"},
		{Kind: "abort", Detail: "abort cause",
			Help: "the mission ended aborted; emitted immediately before end with the proximate cause"},
		{Kind: "end", Detail: "mission outcome",
			Help: "terminal event: the mission's final outcome (exactly one per member)"},
	}
}

// RunHeader is the per-run framing line of a campaign trace file: one
// header line, then that run's events, then the next run's header. Kind
// is always "run" (no event kind collides with it).
type RunHeader struct {
	Kind    string `json:"kind"`
	Run     int    `json:"run"`
	Gen     string `json:"gen"`
	Map     int    `json:"map"`
	Sc      int    `json:"sc"`
	Rep     int    `json:"rep"`
	Seed    int64  `json:"seed"`
	Events  int    `json:"events"`
	Dropped int    `json:"dropped,omitempty"`
}

// runHeaderKind is the Kind value framing a run in a trace file.
const runHeaderKind = "run"

// WriteRunTrace writes one run's framing header and events as JSONL.
func WriteRunTrace(w io.Writer, hdr RunHeader, events []Event, dropped int) error {
	hdr.Kind = runHeaderKind
	hdr.Events = len(events)
	hdr.Dropped = dropped
	line, err := json.Marshal(hdr)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s\n", line); err != nil {
		return err
	}
	for _, ev := range events {
		line, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s\n", line); err != nil {
			return err
		}
	}
	return nil
}
