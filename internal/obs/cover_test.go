package obs

import (
	"bytes"
	"errors"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
)

// cover_test exercises the Default-registry conveniences and the small
// error/edge branches the main suites reach through registries of their
// own.

func TestDefaultRegistryConveniences(t *testing.T) {
	c := NewCounter("test_default_ops_total", "ops", "default-registry counter")
	c.Inc()
	g := NewGauge("test_default_level", "items", "default-registry gauge")
	g.Set(3)
	h := NewHistogram("test_default_lat_seconds", "s", "default-registry histogram", []float64{1})
	h.Observe(0.5)
	v := NewCounterVec("test_default_by_kind_total", "ops", "default-registry vec", "kind", []string{"a"})
	v.With("a").Inc()
	NewCounterFunc("test_default_fn_total", "ops", "default-registry func counter", func() int64 { return 9 })
	NewGaugeFunc("test_default_fn_level", "items", "default-registry func gauge", func() int64 { return 4 })

	var buf bytes.Buffer
	if err := WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"test_default_ops_total 1",
		"test_default_level 3",
		"test_default_lat_seconds_count 1",
		`test_default_by_kind_total{kind="a"} 1`,
		"test_default_fn_total 9",
		"test_default_fn_level 4",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Default exposition missing %q", want)
		}
	}

	found := false
	for _, d := range Describe() {
		if d.Name == "test_default_ops_total" {
			found = true
		}
	}
	if !found {
		t.Error("Describe() lost the Default-registered counter")
	}

	rec := httptest.NewRecorder()
	Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "test_default_ops_total 1") {
		t.Errorf("Default Handler: code %d, body %.120q", rec.Code, rec.Body.String())
	}
}

func TestNewTraceClampsCapacity(t *testing.T) {
	tr := NewTrace(0)
	tr.Record(Event{Tick: 1, Kind: "capture"})
	tr.Record(Event{Tick: 2, Kind: "capture"})
	if ev := tr.Events(); len(ev) != 1 || ev[0].Tick != 2 {
		t.Fatalf("capacity<1 should clamp to a 1-slot ring, got %+v", ev)
	}
	if tr.Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", tr.Dropped())
	}
}

// failAfter errors once n bytes have been accepted.
type failAfter struct{ n int }

func (f *failAfter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, errors.New("writer full")
	}
	f.n -= len(p)
	return len(p), nil
}

func TestWriteRunTraceSurfacesWriterErrors(t *testing.T) {
	events := []Event{{Tick: 0, Kind: "capture"}, {Tick: 1, Kind: "end", Detail: "success"}}
	if err := WriteRunTrace(&failAfter{}, RunHeader{}, events, 0); err == nil {
		t.Fatal("header write error swallowed")
	}
	if err := WriteRunTrace(&failAfter{n: 100}, RunHeader{}, events, 0); err == nil {
		t.Fatal("event write error swallowed")
	}
	if err := WriteRunTrace(io.Discard, RunHeader{}, events, 0); err != nil {
		t.Fatal(err)
	}
}

func TestFormatEventShapes(t *testing.T) {
	cases := []struct {
		ev   Event
		want []string
	}{
		{Event{Tick: 5, T: 1.5, Kind: "fault", Detail: "gps-loss", Phase: PhaseEnter},
			[]string{"FAULT", "enter", "gps-loss"}},
		{Event{Tick: 9, T: 2.5, Kind: "fault", Detail: "gps-loss", Phase: PhaseExit},
			[]string{"fault", "exit", "gps-loss"}},
		{Event{Tick: 3, T: 0.5, Member: 2, Kind: "separation", Detail: "near-miss", Value: 1},
			[]string{"[m2]", "separation", "near-miss", "(1)"}},
	}
	for _, c := range cases {
		got := FormatEvent(c.ev)
		for _, w := range c.want {
			if !strings.Contains(got, w) {
				t.Errorf("FormatEvent(%+v) = %q, missing %q", c.ev, got, w)
			}
		}
	}
}

func TestCheckTraceTimelineWithDroppedHeader(t *testing.T) {
	var file bytes.Buffer
	events := []Event{{Tick: 0, Kind: "capture", Detail: "depth"}, {Tick: 4, Kind: "end", Detail: "success"}}
	if err := WriteRunTrace(&file, RunHeader{Run: 7, Gen: "MLS-V1", Seed: 3}, events, 12); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	st, err := CheckTrace(bytes.NewReader(file.Bytes()), CheckOptions{Timeline: true, Out: &out})
	if err != nil {
		t.Fatal(err)
	}
	// A dropped-events header waives the declared-count and pairing
	// checks; the block itself is still well formed.
	if st.Runs != 1 || st.Events != 2 || st.Violations != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if !strings.Contains(out.String(), "12 dropped") {
		t.Errorf("timeline does not report the dropped count:\n%s", out.String())
	}
}
