// Package obs is the unified observability plane: a process-wide metrics
// registry (counters, gauges, fixed-boundary histograms) and the mission
// flight recorder (trace.go).
//
// The registry holds the repo's standing hot-path contract: increments are
// lock-free sync/atomic operations and allocate nothing after
// registration, so instrumented code stays bit-identical and
// alloc-neutral (the campaign engine's golden digests and benchgate
// budgets guard this). Registration happens once, at package init time,
// and panics on conflicts — a duplicate or malformed metric name is a
// programming error, not a runtime condition.
//
// Everything is self-describing: Describe returns the sorted catalog of
// every registered metric (name, type, unit, help), and the same catalog
// drives both the Prometheus text exposition (WritePrometheus, Handler)
// and the docs/observability.md drift guard. Snapshots are deterministic:
// names sort lexically and values encode canonically, so two snapshots of
// identical counter states are byte-identical.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// MetricType classifies a registered metric for Describe and the
// Prometheus exposition.
type MetricType string

// Metric types.
const (
	TypeCounter   MetricType = "counter"
	TypeGauge     MetricType = "gauge"
	TypeHistogram MetricType = "histogram"
)

// Desc is one catalog entry of the registry: everything a scraper or a
// document needs to interpret the metric without reading the code.
type Desc struct {
	// Name is the exposition name (Prometheus conventions: snake_case,
	// counters end in _total).
	Name string
	// Type is the metric family type.
	Type MetricType
	// Unit names what one increment (or one observation) means.
	Unit string
	// Help is the one-line human description.
	Help string
	// Label is the label name of a CounterVec (empty otherwise);
	// LabelValues is its fixed, pre-registered value set.
	Label       string
	LabelValues []string
}

// Counter is a monotonically increasing int64. The zero value is unusable;
// obtain counters from a Registry.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0; negative deltas silently corrupt the
// monotonicity contract and are the caller's bug).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current count.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is a settable int64 level.
type Gauge struct {
	v atomic.Int64
}

// Set stores the current level.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the level by n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Load returns the current level.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Histogram is a fixed-boundary histogram: observation counts per bucket
// plus an exact count and a float64 sum. Boundaries are set at
// registration and never change, so Observe is a branch-free upper-bound
// scan plus two atomic adds — no locks, no allocations.
type Histogram struct {
	bounds  []float64 // upper bounds, ascending; +Inf bucket is implicit
	buckets []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the number of observations; Sum their total.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the running total of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// CounterVec is a counter family over one label with a fixed,
// pre-registered value set (the label taxonomy is closed — e.g. the
// coordinator's upload-reject reasons). With resolves a value to its
// counter through a read-only map built at registration, so hot-path
// increments stay lock-free and alloc-free.
type CounterVec struct {
	name   string
	label  string
	order  []string
	series map[string]*Counter
}

// With returns the counter of one pre-registered label value; it panics on
// a value that was not registered (a closed taxonomy means an unknown
// value is a programming error).
func (v *CounterVec) With(value string) *Counter {
	c := v.series[value]
	if c == nil {
		panic(fmt.Sprintf("obs: counter vec %s has no label value %q", v.name, value))
	}
	return c
}

// metric is one registered entry: a Desc plus whichever concrete holder
// the type implies. Exactly one of the holders is non-nil (fn serves both
// function-backed counters and gauges).
type metric struct {
	desc  Desc
	ctr   *Counter
	gauge *Gauge
	hist  *Histogram
	vec   *CounterVec
	fn    func() int64
}

// Registry is a set of named metrics. The zero value is unusable; use
// NewRegistry. Registration takes the mutex; reads and increments never
// do.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric
}

// NewRegistry returns an empty registry. Production code registers on
// Default; private registries exist for tests.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*metric)}
}

// Default is the process-wide registry every package registers on and
// every exposition surface (Handler, -metrics dumps) reads.
var Default = NewRegistry()

// validName enforces the Prometheus exposition charset (plus our own
// convention of lowercase snake_case).
func validName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r == '_':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// register installs m under its Desc name, panicking on duplicates or
// malformed names — registration is init-time code, and a silent rename
// or collision would corrupt the catalog forever.
func (r *Registry) register(m *metric) {
	if !validName(m.desc.Name) {
		panic(fmt.Sprintf("obs: invalid metric name %q (want lowercase snake_case)", m.desc.Name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.metrics[m.desc.Name]; dup {
		panic(fmt.Sprintf("obs: metric %q registered twice", m.desc.Name))
	}
	r.metrics[m.desc.Name] = m
}

// NewCounter registers and returns a counter.
func (r *Registry) NewCounter(name, unit, help string) *Counter {
	c := &Counter{}
	r.register(&metric{desc: Desc{Name: name, Type: TypeCounter, Unit: unit, Help: help}, ctr: c})
	return c
}

// NewGauge registers and returns a gauge.
func (r *Registry) NewGauge(name, unit, help string) *Gauge {
	g := &Gauge{}
	r.register(&metric{desc: Desc{Name: name, Type: TypeGauge, Unit: unit, Help: help}, gauge: g})
	return g
}

// NewHistogram registers and returns a fixed-boundary histogram. Bounds
// are upper bucket boundaries and must be strictly ascending.
func (r *Registry) NewHistogram(name, unit, help string, bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %s bounds not ascending at %d", name, i))
		}
	}
	h := &Histogram{
		bounds:  append([]float64(nil), bounds...),
		buckets: make([]atomic.Int64, len(bounds)+1),
	}
	r.register(&metric{desc: Desc{Name: name, Type: TypeHistogram, Unit: unit, Help: help}, hist: h})
	return h
}

// NewCounterVec registers a counter family over one label with the given
// fixed value set (sorted for canonical exposition).
func (r *Registry) NewCounterVec(name, unit, help, label string, values []string) *CounterVec {
	if label == "" || len(values) == 0 {
		panic(fmt.Sprintf("obs: counter vec %s needs a label and at least one value", name))
	}
	order := append([]string(nil), values...)
	sort.Strings(order)
	v := &CounterVec{name: name, label: label, order: order, series: make(map[string]*Counter, len(order))}
	for i := 1; i < len(order); i++ {
		if order[i] == order[i-1] {
			panic(fmt.Sprintf("obs: counter vec %s label value %q registered twice", name, order[i]))
		}
	}
	for _, val := range order {
		v.series[val] = &Counter{}
	}
	r.register(&metric{desc: Desc{Name: name, Type: TypeCounter, Unit: unit, Help: help,
		Label: label, LabelValues: order}, vec: v})
	return v
}

// NewCounterFunc registers a counter whose value is read through fn at
// snapshot time — the mirror for subsystems that already keep their own
// atomic counts (the worldgen world cache) and should not pay a second
// increment on their hot path.
func (r *Registry) NewCounterFunc(name, unit, help string, fn func() int64) {
	r.register(&metric{desc: Desc{Name: name, Type: TypeCounter, Unit: unit, Help: help}, fn: fn})
}

// NewGaugeFunc registers a gauge read through fn at snapshot time.
func (r *Registry) NewGaugeFunc(name, unit, help string, fn func() int64) {
	r.register(&metric{desc: Desc{Name: name, Type: TypeGauge, Unit: unit, Help: help}, fn: fn})
}

// Describe returns the catalog of every registered metric, sorted by name.
func (r *Registry) Describe() []Desc {
	r.mu.Lock()
	out := make([]Desc, 0, len(r.metrics))
	for _, m := range r.metrics {
		out = append(out, m.desc)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// snapshot returns the registered metrics sorted by name; values are read
// afterwards, lock-free.
func (r *Registry) snapshot() []*metric {
	r.mu.Lock()
	out := make([]*metric, 0, len(r.metrics))
	for _, m := range r.metrics {
		out = append(out, m)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].desc.Name < out[j].desc.Name })
	return out
}

// WritePrometheus writes the registry in the Prometheus text exposition
// format (version 0.0.4): sorted names, one HELP/TYPE header per family,
// canonical number formatting. The output for identical counter states is
// byte-identical.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, m := range r.snapshot() {
		d := m.desc
		help := d.Help
		if d.Unit != "" {
			help += " (unit: " + d.Unit + ")"
		}
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", d.Name, help, d.Name, d.Type); err != nil {
			return err
		}
		var err error
		switch {
		case m.ctr != nil:
			_, err = fmt.Fprintf(w, "%s %d\n", d.Name, m.ctr.Load())
		case m.gauge != nil:
			_, err = fmt.Fprintf(w, "%s %d\n", d.Name, m.gauge.Load())
		case m.fn != nil:
			_, err = fmt.Fprintf(w, "%s %d\n", d.Name, m.fn())
		case m.vec != nil:
			for _, val := range m.vec.order {
				if _, err = fmt.Fprintf(w, "%s{%s=%q} %d\n", d.Name, m.vec.label, val, m.vec.series[val].Load()); err != nil {
					return err
				}
			}
		case m.hist != nil:
			cum := int64(0)
			for i, b := range m.hist.bounds {
				cum += m.hist.buckets[i].Load()
				if _, err = fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", d.Name, formatFloat(b), cum); err != nil {
					return err
				}
			}
			cum += m.hist.buckets[len(m.hist.bounds)].Load()
			if _, err = fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", d.Name, cum); err != nil {
				return err
			}
			if _, err = fmt.Fprintf(w, "%s_sum %s\n", d.Name, formatFloat(m.hist.Sum())); err != nil {
				return err
			}
			_, err = fmt.Fprintf(w, "%s_count %d\n", d.Name, m.hist.Count())
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// Handler serves the registry as GET /metrics content.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// Package-level conveniences over Default — what production packages call
// at init.

// NewCounter registers a counter on the Default registry.
func NewCounter(name, unit, help string) *Counter { return Default.NewCounter(name, unit, help) }

// NewGauge registers a gauge on the Default registry.
func NewGauge(name, unit, help string) *Gauge { return Default.NewGauge(name, unit, help) }

// NewHistogram registers a histogram on the Default registry.
func NewHistogram(name, unit, help string, bounds []float64) *Histogram {
	return Default.NewHistogram(name, unit, help, bounds)
}

// NewCounterVec registers a counter family on the Default registry.
func NewCounterVec(name, unit, help, label string, values []string) *CounterVec {
	return Default.NewCounterVec(name, unit, help, label, values)
}

// NewCounterFunc registers a function-backed counter on Default.
func NewCounterFunc(name, unit, help string, fn func() int64) {
	Default.NewCounterFunc(name, unit, help, fn)
}

// NewGaugeFunc registers a function-backed gauge on Default.
func NewGaugeFunc(name, unit, help string, fn func() int64) {
	Default.NewGaugeFunc(name, unit, help, fn)
}

// Describe returns the Default registry's catalog.
func Describe() []Desc { return Default.Describe() }

// WritePrometheus writes the Default registry in text exposition format.
func WritePrometheus(w io.Writer) error { return Default.WritePrometheus(w) }

// Handler serves the Default registry (mount at GET /metrics).
func Handler() http.Handler { return Default.Handler() }

// DebugMux returns the standard debug surface every long-running process
// mounts: GET /metrics (the Default registry) plus the net/http/pprof
// handlers under /debug/pprof/. The coordinator serves it next to the
// lease API; workers and bench tools expose it via the shared -debug
// flag (cliutil).
func DebugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("GET /metrics", Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// formatFloat is the canonical float encoding of the exposition: shortest
// round-trip representation, so identical values are byte-identical.
func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
