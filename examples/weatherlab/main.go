// Weatherlab: side-by-side detector comparison under controlled optics —
// the Fig. 4 experiment as an interactive example. It renders the same
// marker scene under a sweep of conditions (clear, fog, glare, occlusion,
// dusk, rain, altitude) and reports what the classical (OpenCV-style) and
// learned (TPH-YOLO-equivalent) detectors each find.
//
//	go run ./examples/weatherlab
package main

import (
	"fmt"
	"math/rand"

	"repro/internal/detect"
	"repro/internal/geom"
	"repro/internal/vision"
)

func main() {
	dict := vision.DefaultDictionary()
	classical := detect.NewClassical(dict)
	learned := detect.NewLearnedV3(dict)

	type cell struct {
		name string
		alt  float64
		cond vision.Conditions
	}
	sweep := []cell{
		{"clear, 10 m", 10, vision.Conditions{}},
		{"clear, 20 m (high)", 20, vision.Conditions{}},
		{"fog 0.7", 12, vision.Conditions{Fog: 0.7}},
		{"sun glare on pad", 10, vision.Conditions{Glare: 0.7, GlareU: 0.45, GlareV: 0.45}},
		{"partial occlusion", 10, vision.Conditions{Occlusion: 0.9, OccU: 0.54, OccV: 0.54, OccR: 0.06}},
		{"dusk (dim+flat)", 12, vision.Conditions{Brightness: -0.25, Contrast: 0.55}},
		{"rain noise", 12, vision.Conditions{RainNoise: 0.06}},
		{"fog + rain, 16 m", 16, vision.Conditions{Fog: 0.5, RainNoise: 0.05, Contrast: 0.7}},
	}

	const trials = 24
	fmt.Printf("%-22s %-22s %-22s\n", "conditions", "classical (OpenCV)", "learned (TPH-YOLO eq.)")
	for _, c := range sweep {
		var clHit, leHit int
		rng := rand.New(rand.NewSource(77))
		for trial := 0; trial < trials; trial++ {
			id := trial % len(dict.Markers)
			scene := &vision.Scene{
				Ground: vision.GroundTexture{Seed: int64(trial), Base: 0.45, Contrast: 0.25},
				Markers: []vision.MarkerInstance{{
					Marker: dict.Markers[id],
					Center: geom.V3((rng.Float64()-0.5)*3, (rng.Float64()-0.5)*3, 0),
					Size:   2,
					Yaw:    rng.Float64() * 6.28,
				}},
			}
			cam := vision.DefaultCamera()
			cam.Pos = geom.V3(0, 0, c.alt)
			im := scene.Render(cam)
			c.cond.Apply(im, c.alt, rng)

			if found(classical.Detect(im), id) {
				clHit++
			}
			if found(learned.Detect(im), id) {
				leHit++
			}
		}
		fmt.Printf("%-22s %10d/%d %20d/%d\n", c.name, clHit, trials, leHit, trials)
	}
	fmt.Println("\nThe learned detector's margins under glare, occlusion and altitude are")
	fmt.Println("the paper's Fig. 4 story; Table II aggregates the same effect in-flight.")
}

func found(dets []detect.Detection, id int) bool {
	for _, d := range dets {
		if d.ID == id {
			return true
		}
	}
	return false
}
