// Quickstart: run one autonomous landing mission end to end.
//
// It generates a benchmark scenario (procedural world + weather + mission),
// assembles the third-generation landing system (TPH-YOLO-equivalent
// detection, octree mapping, RRT* planning), flies the mission in the
// simulator, and prints the outcome with the decision-state trace.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/scenario"
	"repro/internal/worldgen"
)

func main() {
	// 1. A benchmark scenario: map 2 ("rural-orchard"), scenario 4
	//    (normal weather). Worlds are deterministic per (map, scenario).
	sc, err := worldgen.Generate(2, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Scenario: %s #%d — marker ID %d near %v, weather adverse=%v\n",
		sc.Map.Name, sc.Index, sc.TargetID, sc.GPSGoal, sc.Weather.Adverse())

	// 2. The MLS-V3 landing system. The seed feeds the sampling planner.
	sys, err := scenario.BuildSystem(core.V3, sc, 42)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Fly the closed loop: simulator sensors in, velocity commands out.
	result := scenario.Run(sc, sys, scenario.DefaultRunConfig(42))

	// 4. Report.
	fmt.Printf("\nOutcome: %s after %.1f s\n", result.Outcome, result.Duration)
	if result.Landed {
		fmt.Printf("Touched down %.2f m from the marker center\n", result.LandingError)
	}
	fmt.Printf("Detector: %d/%d marker-visible frames detected\n",
		result.MarkerDetectedFrames, result.MarkerVisibleFrames)

	fmt.Println("\nDecision trace:")
	for _, ev := range sys.Events() {
		fmt.Printf("  t=%6.1fs  %-13s -> %-13s  (%s)\n", ev.T, ev.From, ev.To, ev.Cause)
	}
}
