// Delivery: the package-delivery workload that motivates the paper's
// introduction — one vehicle, several drop-offs, each requiring a precise
// marker landing in a different corner of a suburban map.
//
// The example builds a custom world through the public simulation API
// instead of the benchmark generator: a delivery depot, three customer
// pads (distinct marker IDs) among houses and trees, and a no-landing pond.
// Each leg assembles a fresh MLS-V3 system pointed at the next pad and
// reports the running delivery statistics a fleet operator would track.
//
//	go run ./examples/delivery
package main

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/vision"
	"repro/internal/worldgen"
)

func main() {
	dict := vision.DefaultDictionary()

	// The neighborhood: houses along two streets, garden trees, a pond.
	world := &sim.World{
		Bounds:         geom.NewAABB(geom.V3(-90, -90, 0), geom.V3(90, 90, 45)),
		GroundSeed:     7,
		GroundBase:     0.45,
		GroundContrast: 0.25,
	}
	for i := 0; i < 6; i++ {
		x := -50.0 + float64(i)*20
		world.Buildings = append(world.Buildings,
			geom.NewAABB(geom.V3(x, -18, 0), geom.V3(x+9, -10, 6.5)),
			geom.NewAABB(geom.V3(x, 12, 0), geom.V3(x+8, 20, 7.5)),
		)
	}
	for i := 0; i < 10; i++ {
		world.Trees = append(world.Trees, geom.Cylinder{
			Center: geom.V2(-45+float64(i)*10, -2),
			Radius: 1.8,
			TopZ:   9 + float64(i%4)*2,
		})
	}
	world.Water = append(world.Water, geom.NewAABB(geom.V3(20, 30, 0), geom.V3(40, 48, 0.3)))

	// Three customers, three pads, three distinct marker IDs.
	stops := []struct {
		name string
		pad  geom.Vec3
		id   int
	}{
		{"customer A (front yard)", geom.V3(-38, 32, 0), 1},
		{"customer B (cul-de-sac)", geom.V3(52, -38, 0), 4},
		{"customer C (back lot)", geom.V3(-55, -48, 0), 6},
	}
	for _, s := range stops {
		world.Markers = append(world.Markers, vision.MarkerInstance{
			Marker: dict.Markers[s.id],
			Center: s.pad,
			Size:   2,
			Yaw:    0.4,
		})
	}

	fmt.Println("Delivery route: 3 stops in a suburban neighborhood")
	delivered := 0
	var totalErr float64
	for legIdx, stop := range stops {
		// Each leg is its own mission: the GPS estimate of the customer
		// pad is a few meters off, as address geocoding would be.
		sc := &worldgen.Scenario{
			Map:        worldgen.MapSpec{Index: -1, Class: worldgen.Suburban, Name: "delivery-custom"},
			World:      reorderMarkers(world, legIdx),
			Weather:    sim.Weather{GustStd: 0.4},
			GPSGoal:    stop.pad.Add(geom.V3(3, -2, 0)),
			TargetID:   stop.id,
			TrueMarker: stop.pad,
		}
		sys, err := scenario.BuildSystem(core.V3, sc, int64(100+legIdx))
		if err != nil {
			fmt.Println("assembly failed:", err)
			return
		}
		r := scenario.Run(sc, sys, scenario.DefaultRunConfig(int64(100+legIdx)))

		status := "DELIVERED"
		if r.Outcome != scenario.Success {
			status = "FAILED (" + r.Outcome.String() + ")"
		} else {
			delivered++
			totalErr += r.LandingError
		}
		fmt.Printf("  leg %d -> %-24s %-22s %5.1fs", legIdx+1, stop.name, status, r.Duration)
		if !math.IsNaN(r.LandingError) {
			fmt.Printf("  pad offset %.2f m", r.LandingError)
		}
		fmt.Println()
	}

	fmt.Printf("\n%d/%d parcels delivered", delivered, len(stops))
	if delivered > 0 {
		fmt.Printf(", mean pad offset %.2f m", totalErr/float64(delivered))
	}
	fmt.Println()
}

// reorderMarkers returns a copy of the world with the target of the given
// leg first (the scenario contract places the landing target at index 0;
// the other pads act as the decoys the benchmark also uses).
func reorderMarkers(w *sim.World, target int) *sim.World {
	cp := *w
	cp.Markers = append([]vision.MarkerInstance(nil), w.Markers...)
	cp.Markers[0], cp.Markers[target] = cp.Markers[target], cp.Markers[0]
	return &cp
}
