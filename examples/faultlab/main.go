// Faultlab: dependability campaigns as an interactive example — the DSN
// question ("how does the landing system degrade, and does it recover?")
// answered on a small grid you can watch.
//
// It flies the same campaign four times: nominal, under GPS interference,
// under a sensor-outage plan, and through offboard-link blackouts. Each
// campaign reports the Table-I rates next to the dependability metrics the
// fault subsystem adds — degraded-mode ticks, time-to-recover, and the
// abort-cause tally — plus the fault-event timeline of one mission.
//
// Everything is deterministic: a fault plan rides the campaign's timing
// profile, every stochastic fault effect draws from its own per-concern
// RNG stream, and the printed digest is bit-identical for any -workers
// value (try it). Interrupted fault campaigns resume from checkpoints and
// shard across machines exactly like nominal ones — see cmd/silbench.
//
//	go run ./examples/faultlab
//	go run ./examples/faultlab -quick        # reduced grid (CI smoke)
//	go run ./examples/faultlab -workers 1    # same digests, one core
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/hil"
	"repro/internal/scenario"
	"repro/internal/telemetry"
	"repro/internal/worldgen"
)

func main() {
	quick := flag.Bool("quick", false, "reduced grid for a fast smoke run")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "parallel run workers (1 = sequential)")
	flag.Parse()

	maps := campaign.Range(3)
	scenarios := []int{0, 5} // one normal, one adverse weather slot
	if *quick {
		maps = campaign.Range(2)
		scenarios = []int{0}
	}

	// The experiments: one nominal baseline, three fault plans. The specs
	// are inline here so the example reads as documentation; the bench
	// tools accept the same plans as -faults strings.
	experiments := []struct {
		name string
		spec string
	}{
		{"nominal", "none"},
		{"gps interference", "gps-drift@12+25:mag=0.6"},
		{"sensor outage", "depth-dropout@10+15;color-dropout@18+10:prob=0.8"},
		{"link blackouts", "comms-blackout@15+4;comms-blackout@35+6"},
	}

	fmt.Printf("Faultlab: %d maps x %d scenarios, MLS-V3, %d workers\n\n",
		len(maps), len(scenarios), *workers)

	tbl := telemetry.NewTable("experiment", "success", "collision", "poor-land",
		"degraded-ticks", "recovered", "MTTR(s)", "aborts")
	for _, ex := range experiments {
		plan, err := fault.ParsePlan(ex.spec)
		if err != nil {
			log.Fatal(err)
		}
		timing := scenario.SILTiming()
		timing.Faults = plan

		spec := campaign.Spec{
			Maps:        maps,
			Scenarios:   scenarios,
			Repeats:     1,
			Generations: []core.Generation{core.V3},
			Timing:      timing,
		}

		// One hil.Monitor per run (attached through the campaign's
		// configure hook), so the example can print a fault-event timeline
		// next to the outcome table.
		mons := make([]*hil.Monitor, spec.Total())
		spec.Configure = func(ru campaign.Run, _ *worldgen.Scenario, _ *core.System, cfg *scenario.RunConfig) {
			mon := hil.NewMonitor(hil.DesktopSIL(), hil.NanoCosts())
			mons[ru.Index] = mon
			cfg.Observer = mon
		}
		report, err := campaign.Execute(context.Background(), spec,
			campaign.Options{Workers: *workers})
		if err != nil {
			log.Fatal(err)
		}
		for _, mon := range mons {
			if mon != nil && len(mon.FaultEvents()) > 0 {
				fmt.Printf("%-17s timeline of one mission:\n%s\n",
					ex.name, telemetry.FormatFaultTimeline(mon.FaultEvents()))
				break
			}
		}

		agg := report.Aggregates[core.V3]
		aborts := 0
		for _, n := range agg.AbortCauses {
			aborts += n
		}
		tbl.AddRow(ex.name,
			fmt.Sprintf("%.0f%%", agg.SuccessRate()),
			fmt.Sprintf("%.0f%%", agg.CollisionRate()),
			fmt.Sprintf("%.0f%%", agg.PoorLandingRate()),
			agg.DegradedTicks,
			fmt.Sprintf("%d/%d", agg.RecoveredRuns, agg.FaultRuns),
			agg.MeanTimeToRecover, aborts)
		fmt.Printf("%-17s digest %s\n", ex.name, report.Digest())
	}

	fmt.Println("\nDependability grid")
	if err := tbl.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nEvery digest above is bit-identical for any -workers value, any")
	fmt.Println("checkpoint resume, and any shard-merge order: a fault campaign is a")
	fmt.Println("pure function of (seed, plan). The bench tools take the same plans")
	fmt.Println("via -faults; silbench -fault-sweep prints this grid over all presets.")
}
