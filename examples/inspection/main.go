// Inspection: the infrastructure-inspection workload of the paper's
// introduction — fly a survey pattern around a transmission structure,
// build the octree map from depth returns, then land on the service pad
// at its base.
//
// Unlike the quickstart, this example drives the library modules directly:
// it uses the mapping and planning APIs to plan inspection waypoints
// around the structure, then hands control to the landing system for the
// precision landing. It shows how the substrate packages compose outside
// the benchmark harness.
//
//	go run ./examples/inspection
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/mapping"
	"repro/internal/planning"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/vision"
	"repro/internal/worldgen"
)

func main() {
	dict := vision.DefaultDictionary()

	// The site: a 28 m lattice tower (approximated as a slim tall box),
	// two equipment sheds, and the service pad with marker ID 2.
	tower := geom.NewAABB(geom.V3(-28, -23, 0), geom.V3(-22, -17, 28))
	world := &sim.World{
		Bounds: geom.NewAABB(geom.V3(-90, -90, 0), geom.V3(90, 90, 45)),
		Buildings: []geom.AABB{tower,
			geom.NewAABB(geom.V3(12, -6, 0), geom.V3(20, 2, 4)),
			geom.NewAABB(geom.V3(-46, 8, 0), geom.V3(-38, 16, 4)),
		},
		GroundSeed:     99,
		GroundBase:     0.48,
		GroundContrast: 0.22,
	}
	pad := geom.V3(10, 10, 0)
	world.Markers = []vision.MarkerInstance{{
		Marker: dict.Markers[2], Center: pad, Size: 2,
	}}

	// Phase 1 — survey: map the tower with the depth camera from four
	// vantage points, inserting returns into an octree exactly as the
	// onboard perception module would.
	octree := mapping.NewOctree(geom.V3(0, 0, 16), 160, 0.5, 1.0)
	depth := sim.NewDepthCamera(3)
	// Vantages ring the tower inside the depth camera's 10 m range.
	c := tower.Center()
	vantages := []geom.Vec3{
		{X: c.X - 11, Y: c.Y, Z: 10}, {X: c.X, Y: c.Y - 11, Z: 14},
		{X: c.X + 11, Y: c.Y, Z: 18}, {X: c.X, Y: c.Y + 11, Z: 22},
	}
	for _, v := range vantages {
		// Look at the tower from each vantage.
		yaw := tower.Center().Sub(v).Heading()
		for k := 0; k < 5; k++ {
			returns := depth.Capture(world, v, yaw)
			ends := make([]geom.Vec3, len(returns))
			hits := make([]bool, len(returns))
			for i, r := range returns {
				// Body -> world for a yaw-only platform.
				ends[i] = geom.V3(
					r.Point.X*cos(yaw)-r.Point.Y*sin(yaw),
					r.Point.X*sin(yaw)+r.Point.Y*cos(yaw),
					r.Point.Z,
				).Add(v)
				hits[i] = r.Hit
			}
			octree.InsertCloud(v, ends, hits)
		}
	}
	fmt.Printf("Survey complete: %d occupied voxels, octree memory %.0f kB\n",
		octree.OccupiedVoxels(), float64(octree.MemoryBytes())/1e3)

	// Phase 2 — plan the inspection orbit with RRT* on the live map and
	// verify clearance.
	rrt := planning.NewRRTStar(planning.DefaultRRTStarConfig(), 11)
	var orbit []geom.Vec3
	prev := vantages[0]
	for _, next := range append(vantages[1:], vantages[0]) {
		path, err := rrt.Plan(prev, next, octree)
		if err != nil {
			log.Fatalf("orbit leg failed: %v", err)
		}
		if !planning.PathClear(octree, path, 0.3) {
			log.Fatal("orbit leg not collision-free")
		}
		orbit = append(orbit, path...)
		prev = next
	}
	fmt.Printf("Inspection orbit: %d waypoints, %.0f m total, sharpest corner %.0f°\n",
		len(orbit), planning.PathLength(orbit), planning.MaxTurnAngle(orbit)*57.3)

	// Phase 3 — precision landing on the service pad via the full system.
	sc := &worldgen.Scenario{
		Map:        worldgen.MapSpec{Index: -1, Class: worldgen.Rural, Name: "inspection-site"},
		World:      world,
		Weather:    sim.Weather{},
		GPSGoal:    pad.Add(geom.V3(-2, 3, 0)),
		TargetID:   2,
		TrueMarker: pad,
	}
	sys, err := scenario.BuildSystem(core.V3, sc, 5)
	if err != nil {
		log.Fatal(err)
	}
	r := scenario.Run(sc, sys, scenario.DefaultRunConfig(5))
	fmt.Printf("Landing: %s in %.1f s", r.Outcome, r.Duration)
	if r.Landed {
		fmt.Printf(", %.2f m from pad center", r.LandingError)
	}
	fmt.Println()
}

func cos(a float64) float64 { return geom.QuatYaw(a).Rotate(geom.V3(1, 0, 0)).X }
func sin(a float64) float64 { return geom.QuatYaw(a).Rotate(geom.V3(1, 0, 0)).Y }
