// Campaign: declare a whole evaluation sweep as one value, fan it out
// across every core — and make it survive Ctrl-C.
//
// The paper's tables are grids of deterministic closed-loop runs; the
// campaign engine executes such a grid on a worker pool with per-run
// seeds derived from grid indices, so any worker count reproduces the
// sequential tables bit for bit. This example sweeps two system
// generations over a reduced balanced grid, streams progress with an ETA,
// and prints the merged per-generation aggregate rows plus the measured
// parallel speedup.
//
// It also demonstrates resume-after-cancel: runs are journaled to a
// checkpoint file as they finish, so interrupting the sweep loses
// nothing. Try it:
//
//	go run ./examples/campaign        # Ctrl-C partway through
//	go run ./examples/campaign        # resumes, finishes, same digest
//
// The aggregate digest printed at the end is identical however often the
// campaign was interrupted (exact, order-independent aggregation); the
// checkpoint file is deleted after an uninterrupted finish so the next
// invocation starts fresh.
//
//	go run ./examples/campaign -checkpoint ""   # opt out of journaling
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"time"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/scenario"
)

func main() {
	checkpoint := flag.String("checkpoint", "campaign.ckpt", "journal file for resume-after-cancel (empty disables)")
	flag.Parse()

	// Ctrl-C cancels the campaign between runs.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	// A reduced Table-I sweep: 4 maps, one normal and one adverse weather
	// slot, the mapless V1 versus the full V3 stack.
	spec := campaign.Spec{
		Maps:        campaign.Range(4),
		Scenarios:   []int{0, 5},
		Repeats:     1,
		Generations: []core.Generation{core.V1, core.V3},
		Timing:      scenario.SILTiming(),
	}
	fmt.Printf("Campaign: %d runs (2 generations x 4 maps x 2 scenarios)\n", spec.Total())

	opts := campaign.Options{
		// Workers defaults to GOMAXPROCS; Ordered keeps the log readable.
		Ordered: true,
		OnResult: func(ru campaign.Run, r scenario.Result) {
			fmt.Printf("  %-7s map%d sc%d: %-12s %5.1fs\n",
				ru.Gen, ru.MapIdx, ru.ScenarioIdx, r.Outcome, r.Duration)
		},
		OnProgress: func(p campaign.Progress) {
			fmt.Printf("    %d/%d done, ETA %s\n", p.Done, p.Total, p.ETA.Round(time.Second))
		},
	}

	var journal *campaign.Journal
	if *checkpoint != "" {
		j, err := campaign.OpenJournal(*checkpoint, spec)
		if err != nil {
			log.Fatal(err)
		}
		journal = j
		defer j.Close()
		if done := j.Len(); done > 0 {
			fmt.Printf("resuming from %s: %d/%d runs already journaled (replayed instantly)\n",
				*checkpoint, done, spec.Total())
		}
		opts.Checkpoint = j
	}
	fmt.Println()

	report, err := campaign.Execute(ctx, spec, opts)
	if err != nil {
		if *checkpoint != "" && ctx.Err() != nil {
			fmt.Printf("\ninterrupted — finished runs are journaled in %s; run me again to resume\n", *checkpoint)
			os.Exit(0)
		}
		log.Fatal(err)
	}

	fmt.Println("\nPer-generation aggregates (streamed worker-shard merge):")
	for _, gen := range spec.Generations {
		fmt.Printf("  %s\n", report.Aggregates[gen])
	}
	fmt.Printf("\naggregate digest: %s (bit-identical for any worker count or resume history)\n",
		report.Digest())
	fmt.Printf("%d workers, %.1fs wall for %.1fs of runs — %.2fx speedup over sequential\n",
		report.Workers, report.Wall.Seconds(), report.Busy.Seconds(), report.Speedup())

	// A finished campaign's journal has served its purpose. Close before
	// removing (deleting an open file fails on some platforms); the
	// deferred Close then finds an already-closed file, which is fine.
	if journal != nil {
		journal.Close()
		if err := os.Remove(*checkpoint); err != nil {
			fmt.Fprintf(os.Stderr, "could not remove finished checkpoint %s: %v\n", *checkpoint, err)
		}
	}
}
