// Campaign: declare a whole evaluation sweep as one value and fan it out
// across every core.
//
// The paper's tables are grids of deterministic closed-loop runs; the
// campaign engine executes such a grid on a worker pool with per-run
// seeds derived from grid indices, so any worker count reproduces the
// sequential tables bit for bit. This example sweeps two system
// generations over a reduced balanced grid, streams progress with an ETA,
// and prints the merged per-generation aggregate rows plus the measured
// parallel speedup.
//
//	go run ./examples/campaign
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"os/signal"
	"time"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/scenario"
)

func main() {
	// Ctrl-C cancels the campaign between runs.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	// A reduced Table-I sweep: 4 maps, one normal and one adverse weather
	// slot, the mapless V1 versus the full V3 stack.
	spec := campaign.Spec{
		Maps:        campaign.Range(4),
		Scenarios:   []int{0, 5},
		Repeats:     1,
		Generations: []core.Generation{core.V1, core.V3},
		Timing:      scenario.SILTiming(),
	}
	fmt.Printf("Campaign: %d runs (2 generations x 4 maps x 2 scenarios)\n\n", spec.Total())

	report, err := campaign.Execute(ctx, spec, campaign.Options{
		// Workers defaults to GOMAXPROCS; Ordered keeps the log readable.
		Ordered: true,
		OnResult: func(ru campaign.Run, r scenario.Result) {
			fmt.Printf("  %-7s map%d sc%d: %-12s %5.1fs\n",
				ru.Gen, ru.MapIdx, ru.ScenarioIdx, r.Outcome, r.Duration)
		},
		OnProgress: func(p campaign.Progress) {
			fmt.Printf("    %d/%d done, ETA %s\n", p.Done, p.Total, p.ETA.Round(time.Second))
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nPer-generation aggregates (streamed worker-shard merge):")
	for _, gen := range spec.Generations {
		fmt.Printf("  %s\n", report.Aggregates[gen])
	}
	fmt.Printf("\n%d workers, %.1fs wall for %.1fs of runs — %.2fx speedup over sequential\n",
		report.Workers, report.Wall.Seconds(), report.Busy.Seconds(), report.Speedup())
}
