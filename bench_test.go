// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation. Each benchmark prints the reproduced rows/series once (via
// sync.Once, so -benchtime rescaling does not repeat the expensive
// experiment), then times a representative unit of the underlying workload
// for the ns/op number.
//
// By default the experiment sweeps run a reduced-but-balanced slice of the
// benchmark (all 10 maps, 4 scenarios mixing normal and adverse weather,
// 1 repetition). Set REPRO_BENCH_FULL=1 for the paper-scale 10×10×3.
//
// Expected shapes (see EXPERIMENTS.md for the full comparison):
//
//	Table I   success V1 < V2 < V3; collisions collapse V1 -> V3
//	Table II  FNR classical > learned-V2 > learned-V3
//	Table III HIL success < SIL success; collisions rise
//	Fig. 5a   bounded A* fails on big slabs where RRT* succeeds
//	Fig. 6    inflation radius trades collisions against aborts
//	Fig. 5d   GPS drift grows with weather degradation
//	Fig. 7    field CPU/RAM above HIL's
package main

import (
	"context"
	"fmt"
	"math"
	"net/http/httptest"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/coord"
	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/fault"
	"repro/internal/geom"
	"repro/internal/hil"
	"repro/internal/mapping"
	"repro/internal/planning"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/vision"
	"repro/internal/worldgen"
)

// benchScenarios is the reduced balanced slice: two normal, two adverse.
var benchScenarios = []int{0, 2, 5, 7}

func fullScale() bool { return os.Getenv("REPRO_BENCH_FULL") == "1" }

var (
	batchCache   = map[core.Generation][]scenario.Result{}
	batchCacheMu sync.Mutex
)

// batchFor runs (or returns the cached) SIL sweep for one generation; the
// Table I and Table II benchmarks share the same underlying runs, exactly
// as the paper derives both tables from one experiment. The sweep fans
// out across all cores through the campaign engine — ordered results, so
// the tables match a sequential sweep bit for bit.
func batchFor(b *testing.B, gen core.Generation) []scenario.Result {
	b.Helper()
	batchCacheMu.Lock()
	defer batchCacheMu.Unlock()
	if res, ok := batchCache[gen]; ok {
		return res
	}
	idxs, repeats := benchScenarios, 1
	if fullScale() {
		idxs = []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
		repeats = 3
	}
	rep, err := campaign.Execute(context.Background(), campaign.Spec{
		Maps:        campaign.Range(10),
		Scenarios:   idxs,
		Repeats:     repeats,
		Generations: []core.Generation{gen},
		Timing:      scenario.SILTiming(),
	}, campaign.Options{})
	if err != nil {
		b.Fatal(err)
	}
	batchCache[gen] = rep.Results
	return rep.Results
}

// BenchmarkCampaign times one reduced Table-I-style sweep per iteration,
// sequentially and across GOMAXPROCS workers — the speedup the campaign
// engine buys on the hottest path in the repo. On a multi-core machine
// workers=max should beat workers=1 by roughly the core count.
func BenchmarkCampaign(b *testing.B) {
	spec := campaign.Spec{
		Maps:        campaign.Range(4),
		Scenarios:   []int{0, 5},
		Generations: []core.Generation{core.V1},
		Timing:      scenario.SILTiming(),
	}
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := campaign.Execute(context.Background(), spec,
					campaign.Options{Workers: workers, DiscardResults: true}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------- Table I

var tableIOnce sync.Once

func BenchmarkTableI_SIL(b *testing.B) {
	tableIOnce.Do(func() {
		fmt.Println("\n=== Table I — SIL success/collision/poor-landing ===")
		for _, gen := range []core.Generation{core.V1, core.V2, core.V3} {
			agg := scenario.Summarize(gen.String(), batchFor(b, gen))
			fmt.Printf("  %-8s success %6.2f%%  collision %6.2f%%  poor-landing %6.2f%%  (landing err %.2f m)\n",
				agg.System, agg.SuccessRate(), agg.CollisionRate(), agg.PoorLandingRate(),
				agg.MeanLandingError)
		}
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc, err := worldgen.Generate(2, 4)
		if err != nil {
			b.Fatal(err)
		}
		sys, err := scenario.BuildSystem(core.V3, sc, 42)
		if err != nil {
			b.Fatal(err)
		}
		scenario.Run(sc, sys, scenario.DefaultRunConfig(42))
	}
}

// --------------------------------------------------------------- Table II

var tableIIOnce sync.Once

func BenchmarkTableII_Detection(b *testing.B) {
	tableIIOnce.Do(func() {
		fmt.Println("\n=== Table II — detector false-negative rates ===")
		impl := map[core.Generation]string{
			core.V1: "OpenCV-classical", core.V2: "TPH-YOLO-eq (V2 cal.)", core.V3: "TPH-YOLO-eq (V3 cal.)",
		}
		for _, gen := range []core.Generation{core.V1, core.V2, core.V3} {
			agg := scenario.Summarize(gen.String(), batchFor(b, gen))
			fmt.Printf("  %-8s %-22s FNR %5.2f%%\n", agg.System, impl[gen], 100*agg.FalseNegativeRate)
		}
	})
	// Unit: one frame through the learned detector.
	dict := vision.DefaultDictionary()
	det := detect.NewLearnedV3(dict)
	scene := &vision.Scene{
		Ground:  vision.GroundTexture{Seed: 5, Base: 0.45, Contrast: 0.25},
		Markers: []vision.MarkerInstance{{Marker: dict.Markers[0], Center: geom.V3(0, 0, 0), Size: 2}},
	}
	cam := vision.DefaultCamera()
	cam.Pos = geom.V3(0, 0, 12)
	im := scene.Render(cam)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(det.Detect(im)) == 0 {
			b.Fatal("detector lost the marker")
		}
	}
}

// -------------------------------------------------------------- Table III

var tableIIIOnce sync.Once

func hilRun(seed int64, mi, si int) (scenario.Result, *hil.Monitor, error) {
	profile := hil.JetsonNanoMAXN()
	costs := hil.NanoCosts()
	plan := hil.DerivePlan(profile, costs)
	sc, err := worldgen.Generate(mi, si)
	if err != nil {
		return scenario.Result{}, nil, err
	}
	sys, err := scenario.BuildSystem(core.V3, sc, seed)
	if err != nil {
		return scenario.Result{}, nil, err
	}
	sys.SetReplanInterval(plan.ReplanInterval)
	sys.SetGuardInterval(plan.GuardInterval)
	mon := hil.NewMonitor(profile, costs)
	cfg := scenario.DefaultRunConfig(seed)
	cfg.Timing = plan.Timing
	cfg.Observer = mon
	return scenario.Run(sc, sys, cfg), mon, nil
}

func BenchmarkTableIII_HIL(b *testing.B) {
	tableIIIOnce.Do(func() {
		fmt.Println("\n=== Table III — HIL (Jetson Nano MAXN) MLS-V3 ===")
		idxs := benchScenarios
		if fullScale() {
			idxs = []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
		}
		var results []scenario.Result
		var meanCPU, meanMem float64
		n := 0
		for mi := 0; mi < 10; mi++ {
			for _, si := range idxs {
				seed := int64(mi)*1_000_003 + int64(si)*9_176 + 300
				r, mon, err := hilRun(seed, mi, si)
				if err != nil {
					b.Fatal(err)
				}
				results = append(results, r)
				meanCPU += mon.MeanCPU()
				meanMem += mon.MeanMemMB()
				n++
			}
		}
		agg := scenario.Summarize("MLS-V3", results)
		fmt.Printf("  %-8s success %6.2f%%  collision %6.2f%%  poor-landing %6.2f%%\n",
			agg.System, agg.SuccessRate(), agg.CollisionRate(), agg.PoorLandingRate())
		fmt.Printf("  resources: mean CPU %.0f%% of 400%%, mean RAM %.2f GB of 2.9 GB\n",
			meanCPU/float64(n), meanMem/float64(n)/1000)
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := hilRun(7, 0, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// -------------------------------------------------- Fig. 2 (state machine)

var fig2Once sync.Once

func BenchmarkFig2_StateMachine(b *testing.B) {
	fig2Once.Do(func() {
		fmt.Println("\n=== Fig. 2 — decision state machine trace (one mission) ===")
		sc, _ := worldgen.Generate(2, 4)
		sys, _ := scenario.BuildSystem(core.V3, sc, 42)
		r := scenario.Run(sc, sys, scenario.DefaultRunConfig(42))
		for _, ev := range sys.Events() {
			fmt.Printf("  t=%6.1fs  %-13s -> %-13s  %s\n", ev.T, ev.From, ev.To, ev.Cause)
		}
		fmt.Printf("  outcome: %s\n", r.Outcome)
	})
	// Unit: one decision-module tick (no frame, no depth).
	sc, _ := worldgen.Generate(2, 4)
	sys, _ := scenario.BuildSystem(core.V3, sc, 42)
	epoch := core.SensorEpoch{Dt: 0.05, GPS: geom.V3(0, 0, 12), LidarRange: 12, LidarOK: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Step(epoch)
	}
}

// ------------------------------------------- Fig. 5a (large-obstacle A* )

var fig5aOnce sync.Once

// slabMap builds an oracle octree containing a wide slab building.
func slabMap(width, height float64) *mapping.Octree {
	o := mapping.NewOctree(geom.V3(15, 0, 16), 128, 0.5, 1.0)
	for y := -width / 2; y <= width/2; y += 0.4 {
		for z := 0.25; z <= height; z += 0.4 {
			for _, dx := range []float64{-0.2, 0.2} {
				p := geom.V3(15+dx, y, z)
				o.InsertRay(p, p, true)
			}
		}
	}
	return o
}

func BenchmarkFig5a_LargeObstacle(b *testing.B) {
	fig5aOnce.Do(func() {
		fmt.Println("\n=== Fig. 5a — planner success vs obstacle size (pool-bounded A* vs RRT*) ===")
		fmt.Printf("  %-18s %-14s %-14s\n", "slab (w x h, m)", "A* (pool 6k)", "RRT*")
		start := geom.V3(0, 0, 4)
		goal := geom.V3(30, 0, 4)
		for _, dim := range [][2]float64{{10, 8}, {30, 16}, {60, 26}, {90, 34}} {
			m := slabMap(dim[0], dim[1])
			_, aErr := planning.NewAStar(planning.DefaultAStarConfig()).Plan(start, goal, m)
			_, rErr := planning.NewRRTStar(planning.DefaultRRTStarConfig(), 3).Plan(start, goal, m)
			fmt.Printf("  %5.0f x %-10.0f %-14s %-14s\n", dim[0], dim[1], okWord(aErr), okWord(rErr))
		}
	})
	m := slabMap(30, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = planning.NewRRTStar(planning.DefaultRRTStarConfig(), int64(i)).
			Plan(geom.V3(0, 0, 4), geom.V3(30, 0, 4), m)
	}
}

func okWord(err error) string {
	if err == nil {
		return "path found"
	}
	return "FAILED"
}

// ------------------------------------------------- Fig. 6 (inflation ablation)

var fig6Once sync.Once

func BenchmarkFig6_Inflation(b *testing.B) {
	fig6Once.Do(func() {
		fmt.Println("\n=== Fig. 6 — inflation-radius ablation (V3, woodline map) ===")
		fmt.Printf("  %-10s %-10s %-12s %-12s\n", "inflation", "success", "collision", "poor-landing")
		for _, infl := range []float64{0.5, 1.0, 1.5, 2.0} {
			var results []scenario.Result
			for mi := 0; mi < 4; mi++ { // rural maps: the clutter regime
				for _, si := range benchScenarios {
					sc, err := worldgen.Generate(mi, si)
					if err != nil {
						b.Fatal(err)
					}
					dict := vision.DefaultDictionary()
					sys, err := core.NewV3(sc.TargetID, sc.GPSGoal, dict, int64(mi*10+si))
					if err != nil {
						b.Fatal(err)
					}
					// Swap in a map with the ablated inflation radius.
					cfgSys, err := core.NewSystem(sys.Config(), core.Dependencies{
						Detector: detect.NewLearnedV3(dict),
						Map:      mapping.NewOctree(geom.V3(0, 0, 16), 160, 0.5, infl),
						Planner:  planning.NewRRTStar(planning.DefaultRRTStarConfig(), int64(mi*10+si)),
					})
					if err != nil {
						b.Fatal(err)
					}
					cfg := scenario.DefaultRunConfig(int64(mi*100 + si))
					results = append(results, scenario.Run(sc, cfgSys, cfg))
				}
			}
			agg := scenario.Summarize("", results)
			fmt.Printf("  %-10.1f %8.1f%% %10.1f%% %10.1f%%\n",
				infl, agg.SuccessRate(), agg.CollisionRate(), agg.PoorLandingRate())
		}
	})
	m := mapping.NewOctree(geom.V3(0, 0, 16), 160, 0.5, 1.0)
	m.InsertRay(geom.V3(5, 0, 5), geom.V3(5, 0, 5), true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Blocked(geom.V3(5.5, 0, 5))
	}
}

// ---------------------------------------------------- Fig. 5d (GPS drift)

var fig5dOnce sync.Once

func BenchmarkFig5d_GPSDrift(b *testing.B) {
	fig5dOnce.Do(func() {
		fmt.Println("\n=== Fig. 5d — GPS drift vs weather degradation (5-minute hold) ===")
		fmt.Printf("  %-14s %-12s %-12s\n", "degradation", "max drift", "final drift")
		for _, deg := range []float64{0, 0.25, 0.5, 0.75, 1.0} {
			gps := sim.NewGPS(11, deg)
			var maxDrift float64
			for i := 0; i < 6000; i++ {
				gps.Step(0.05)
				if d := gps.Bias().Len(); d > maxDrift {
					maxDrift = d
				}
			}
			fmt.Printf("  %-14.2f %9.2f m %9.2f m\n", deg, maxDrift, gps.Bias().Len())
		}
	})
	gps := sim.NewGPS(3, 0.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gps.Step(0.05)
		gps.Read(geom.V3(0, 0, 10))
	}
}

// ------------------------------------------------------ Fig. 7 (resources)

var fig7Once sync.Once

func BenchmarkFig7_Resources(b *testing.B) {
	fig7Once.Do(func() {
		fmt.Println("\n=== Fig. 7 — Jetson Nano resource usage, HIL vs field profile ===")
		type prof struct {
			name  string
			costs hil.ModuleCosts
		}
		for _, pr := range []prof{{"HIL", hil.NanoCosts()}, {"field", hil.FieldCosts()}} {
			profile := hil.JetsonNanoMAXN()
			plan := hil.DerivePlan(profile, pr.costs)
			sc, err := worldgen.Generate(0, 4)
			if err != nil {
				b.Fatal(err)
			}
			sys, err := scenario.BuildSystem(core.V3, sc, 9)
			if err != nil {
				b.Fatal(err)
			}
			sys.SetReplanInterval(plan.ReplanInterval)
			sys.SetGuardInterval(plan.GuardInterval)
			mon := hil.NewMonitor(profile, pr.costs)
			cfg := scenario.DefaultRunConfig(9)
			cfg.Timing = plan.Timing
			cfg.Observer = mon
			scenario.Run(sc, sys, cfg)
			peakCPU, peakMem := mon.Peak()
			fmt.Printf("  %-6s mean CPU %3.0f%% (peak %3.0f%%) of 400%%, mean RAM %.2f GB (peak %.2f GB)\n",
				pr.name, mon.MeanCPU(), peakCPU, mon.MeanMemMB()/1000, peakMem/1000)
		}
	})
	mon := hil.NewMonitor(hil.JetsonNanoMAXN(), hil.FieldCosts())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mon.RecordDetect()
		mon.Advance(0.05, float64(i)*0.05, 1_000_000)
	}
}

// --------------------------------------- Real-world accuracy (paper §V-C)

var realWorldOnce sync.Once

func BenchmarkRealWorld_Accuracy(b *testing.B) {
	realWorldOnce.Do(func() {
		fmt.Println("\n=== §V-C — landing accuracy, SIL vs field profile ===")
		// SIL baseline: successful landings on easy scenarios.
		var silErr []float64
		for mi := 0; mi < 4; mi++ {
			sc, _ := worldgen.Generate(mi, 4)
			sys, _ := scenario.BuildSystem(core.V3, sc, int64(mi))
			r := scenario.Run(sc, sys, scenario.DefaultRunConfig(int64(mi)))
			if r.Outcome == scenario.Success {
				silErr = append(silErr, r.LandingError)
			}
		}
		// Field: degraded GPS, gusts, erroneous depth, Nano timing.
		profile := hil.JetsonNanoMAXN()
		costs := hil.FieldCosts()
		plan := hil.DerivePlan(profile, costs)
		var fieldErr []float64
		var drift float64
		n := 0
		for i := 0; i < 8; i++ {
			sc, _ := worldgen.Generate([]int{0, 2, 4, 5}[i%4], i%10)
			if sc.Weather.GPSDegradation < 0.5 {
				sc.Weather.GPSDegradation = 0.5
			}
			if sc.Weather.GustStd < 1.0 {
				sc.Weather.GustStd = 1.0
			}
			sys, _ := scenario.BuildSystem(core.V3, sc, int64(i*7))
			sys.SetReplanInterval(plan.ReplanInterval)
			sys.SetGuardInterval(plan.GuardInterval)
			cfg := scenario.DefaultRunConfig(int64(i * 7))
			cfg.Timing = plan.Timing
			cfg.ErroneousDepthRate = 0.04
			r := scenario.Run(sc, sys, cfg)
			if r.Landed && !math.IsNaN(r.LandingError) {
				fieldErr = append(fieldErr, r.LandingError)
			}
			drift += r.MaxGPSDrift
			n++
		}
		fmt.Printf("  SIL   mean landing error %.2f m over %d landings (paper ~0.25 m)\n",
			mean(silErr), len(silErr))
		fmt.Printf("  field mean landing error %.2f m over %d landings (paper ~0.60 m), mean max drift %.2f m\n",
			mean(fieldErr), len(fieldErr), drift/float64(n))
	})
	sc, _ := worldgen.Generate(0, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys, _ := scenario.BuildSystem(core.V3, sc, 42)
		_ = sys
	}
}

// ------------------------------------------- Hot-path microbenchmarks (PR 2)

// BenchmarkRun times one full closed-loop SIL mission through the campaign
// per-run unit (world acquisition + system assembly + scenario.Run) — the
// cost every evaluation grid multiplies. The before/after table for the
// spatial-index / zero-alloc / world-cache work lives in BENCH_2.json.
func BenchmarkRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := scenario.RunGridCell(core.V3, 2, 4, 42, scenario.SILTiming(), nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunPipelined is BenchmarkRun with the staged runner: the same
// mission with perception on a concurrent stage (k = 2 ticks). Gated by
// tools/benchgate next to BenchmarkRun, so the pipeline's channel/buffer
// machinery cannot silently start allocating per tick.
func BenchmarkRunPipelined(b *testing.B) {
	timing := scenario.SILTiming()
	timing.Pipeline = scenario.PipelineOn
	timing.PipelineLatencyTicks = 2
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := scenario.RunGridCell(core.V3, 2, 4, 42, timing, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunFast is BenchmarkRun through the tolerance-verified fast
// profile: coarse-to-fine NCC, bundled depth traversal, deduplicated
// collision checks, and both perception and planning on concurrent stages
// (k = 2 each). Gated by tools/benchgate as a RATIO against BenchmarkRun
// in the same run — fast mode must stay >= 1.8x — plus its own allocation
// budget. Fast results are NOT bit-identical to exact ones; their
// aggregate fidelity is enforced by campaign.VerifyFast (silbench
// -verify-fast).
func BenchmarkRunFast(b *testing.B) {
	timing := scenario.SILTiming().WithFast()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := scenario.RunGridCell(core.V3, 2, 4, 42, timing, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunFaultsOff is BenchmarkRun flown through a Timing profile
// whose fault plan is nil — the path every nominal campaign takes now that
// the fault-injection subsystem exists. Gated by tools/benchgate at
// BenchmarkRun's own allocation budget: the fault wiring must cost the
// nominal hot path nothing (no injector, no extra RNG streams, no per-tick
// allocations).
func BenchmarkRunFaultsOff(b *testing.B) {
	timing := scenario.SILTiming() // Faults == nil: the zero-alloc path
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := scenario.RunGridCell(core.V3, 2, 4, 42, timing, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunTraceOff is BenchmarkRun with the flight recorder left off
// — the path every untraced campaign takes now that the observability
// plane exists. The configure hook explicitly leaves RunConfig.Recorder
// nil, so what's measured is the recorder wiring's off state: one nil
// pointer check per record site and nothing else. Gated by
// tools/benchgate at BenchmarkRun's own allocation budget.
func BenchmarkRunTraceOff(b *testing.B) {
	configure := func(sc *worldgen.Scenario, sys *core.System, cfg *scenario.RunConfig) {
		cfg.Recorder = nil // the off state every untraced run flies
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := scenario.RunGridCell(core.V3, 2, 4, 42, scenario.SILTiming(), configure); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunFleetOff is BenchmarkRun flown through a Timing profile
// whose fleet spec has been normalized away — the path every single-drone
// campaign takes now that the fleet subsystem exists. Gated by
// tools/benchgate at BenchmarkRun's own allocation budget: the fleet
// wiring (the Run dispatch, the overlay hooks on every sensor, the extra
// Timing field) must cost the solo hot path nothing.
func BenchmarkRunFleetOff(b *testing.B) {
	timing := scenario.SILTiming()
	timing.Fleet = &scenario.FleetSpec{Size: 1} // normalized to nil below
	timing = timing.Canonical()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := scenario.RunGridCell(core.V3, 2, 4, 42, timing, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunFleet is the same cell flown as a 3-drone lockstep fleet:
// three full missions interleaved tick by tick, plus the per-tick overlay
// rebuild and the pairwise separation accounting. Reported for visibility
// and snapshotted in BENCH_5.json; not gated — a fleet run is legitimately
// about fleet-size times the solo cost.
func BenchmarkRunFleet(b *testing.B) {
	timing := scenario.SILTiming()
	timing.Fleet = &scenario.FleetSpec{Size: 3}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := scenario.RunGridCell(core.V3, 2, 4, 42, timing, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunFaulted is the same mission under the "degraded" preset
// plan — reported for visibility (fault campaigns may allocate; they are
// not gated).
func BenchmarkRunFaulted(b *testing.B) {
	plan, err := fault.ParsePlan("degraded")
	if err != nil {
		b.Fatal(err)
	}
	timing := scenario.SILTiming()
	timing.Faults = plan
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := scenario.RunGridCell(core.V3, 2, 4, 42, timing, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRender times one downward-camera frame capture on a cluttered
// urban world: footprint scene assembly, ground/marker rasterization, and
// the photometric condition pass.
func BenchmarkRender(b *testing.B) {
	sc, err := worldgen.Generate(7, 5)
	if err != nil {
		b.Fatal(err)
	}
	color := sim.NewColorCamera(1)
	pos := sc.TrueMarker.WithZ(12)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		im := color.Capture(sc.World, sc.Weather, pos, 0.4, 2.0)
		if im.W == 0 {
			b.Fatal("empty frame")
		}
	}
}

// BenchmarkDepthCapture times one forward depth-camera frame (the 16x10 ray
// fan with soft canopies) over a tree-heavy rural world.
func BenchmarkDepthCapture(b *testing.B) {
	sc, err := worldgen.Generate(1, 0)
	if err != nil {
		b.Fatal(err)
	}
	depth := sim.NewDepthCamera(2)
	pos := geom.V3(10, 5, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(depth.Capture(sc.World, pos, 0.7)) == 0 {
			b.Fatal("no returns")
		}
	}
}

// BenchmarkRaycast times single obstacle raycasts against an urban world,
// the primitive under the lidar and depth sensors.
func BenchmarkRaycast(b *testing.B) {
	sc, err := worldgen.Generate(9, 0)
	if err != nil {
		b.Fatal(err)
	}
	rays := make([]geom.Ray, 64)
	for i := range rays {
		a := float64(i) / float64(len(rays)) * 2 * math.Pi
		rays[i] = geom.Ray{
			Origin: geom.V3(math.Cos(a)*20, math.Sin(a)*20, 10),
			Dir:    geom.V3(-math.Cos(a), -math.Sin(a), -0.15),
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc.World.Raycast(rays[i%len(rays)], 40)
	}
}

// BenchmarkGroundHeight times the per-tick lidar surface query on the
// tree-heavy rural-woodline world.
func BenchmarkGroundHeight(b *testing.B) {
	sc, err := worldgen.Generate(1, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc.World.GroundHeightAt(float64(i%120)-60, float64((i*7)%120)-60)
	}
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// -------------------------------------------- §III-B (map memory ablation)

var mapMemOnce sync.Once

func BenchmarkMapMemory(b *testing.B) {
	mapMemOnce.Do(func() {
		fmt.Println("\n=== §III-B — occupancy-map memory, dense grid vs octree ===")
		fmt.Printf("  %-26s %-14s %-14s\n", "map (192x192x48 m @0.5 m)", "memory", "occupied")
		bounds := geom.NewAABB(geom.V3(-96, -96, 0), geom.V3(96, 96, 48))
		dg := mapping.NewDenseGrid(bounds, 0.5, 1.0)
		oc := mapping.NewOctree(geom.V3(0, 0, 24), 96, 0.5, 1.0)
		// A realistic mission's worth of depth data.
		sc, _ := worldgen.Generate(7, 0)
		depth := sim.NewDepthCamera(3)
		for i := 0; i < 400; i++ {
			pos := geom.V3(float64(i%40)*2-40, float64(i/40)*8-40, 12)
			returns := depth.Capture(sc.World, pos, float64(i)*0.3)
			ends := make([]geom.Vec3, len(returns))
			hits := make([]bool, len(returns))
			for k, r := range returns {
				ends[k] = r.Point.Add(pos)
				hits[k] = r.Hit
			}
			dg.InsertCloud(pos, ends, hits)
			oc.InsertCloud(pos, ends, hits)
		}
		fmt.Printf("  %-26s %10.2f MB %10d\n", "dense grid", float64(dg.MemoryBytes())/1e6, dg.OccupiedVoxels())
		fmt.Printf("  %-26s %10.2f MB %10d\n", "octree", float64(oc.MemoryBytes())/1e6, oc.OccupiedVoxels())
	})
	oc := mapping.NewOctree(geom.V3(0, 0, 24), 96, 0.5, 1.0)
	ends := []geom.Vec3{geom.V3(5, 0, 10), geom.V3(5, 1, 10), geom.V3(5, 2, 10)}
	hits := []bool{true, true, false}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		oc.InsertCloud(geom.V3(0, 0, 10), ends, hits)
	}
}

// -------------------------------------------- §II-B (planner ablation)

var plannerAblOnce sync.Once

func BenchmarkPlannerAblation(b *testing.B) {
	plannerAblOnce.Do(func() {
		fmt.Println("\n=== §II-B — A* pool-size sweep against a 60x26 m slab ===")
		fmt.Printf("  %-12s %-12s\n", "pool size", "result")
		m := slabMap(60, 26)
		start, goal := geom.V3(0, 0, 4), geom.V3(30, 0, 4)
		for _, pool := range []int{500, 2000, 8000, 40000, 400000} {
			a := planning.NewAStar(planning.AStarConfig{
				MaxExpansions: pool, Horizon: 60, MinZ: 0.8, MaxZ: 40, Res: 1.0})
			_, err := a.Plan(start, goal, m)
			fmt.Printf("  %-12d %-12s\n", pool, okWord(err))
		}
	})
	m := slabMap(10, 8)
	a := planning.NewAStar(planning.DefaultAStarConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = a.Plan(geom.V3(0, 0, 4), geom.V3(30, 0, 4), m)
	}
}

// ------------------------------------- §III-D (validation threshold sweep)

var validationOnce sync.Once

func BenchmarkValidationThreshold(b *testing.B) {
	validationOnce.Do(func() {
		fmt.Println("\n=== §III-D — safety-vs-availability: validation threshold sweep (V3) ===")
		fmt.Printf("  %-10s %-10s %-12s %-14s\n", "threshold", "success", "collision", "poor-landing")
		for _, thr := range []int{3, 5, 7, 9} {
			var results []scenario.Result
			for mi := 0; mi < 5; mi++ {
				for _, si := range []int{5, 7} { // adverse slots stress validation
					sc, err := worldgen.Generate(mi, si)
					if err != nil {
						b.Fatal(err)
					}
					sys, err := scenario.BuildSystem(core.V3, sc, int64(mi*10+si))
					if err != nil {
						b.Fatal(err)
					}
					cfg := sys.Config()
					cfg.ValidationThreshold = thr
					dict := vision.DefaultDictionary()
					tuned, err := core.NewSystem(cfg, core.Dependencies{
						Detector: detect.NewLearnedV3(dict),
						Map:      mapping.NewOctree(geom.V3(0, 0, 16), 160, 0.5, 1.0),
						Planner:  planning.NewRRTStar(planning.DefaultRRTStarConfig(), int64(mi*10+si)),
					})
					if err != nil {
						b.Fatal(err)
					}
					results = append(results, scenario.Run(sc, tuned, scenario.DefaultRunConfig(int64(mi*100+si))))
				}
			}
			agg := scenario.Summarize("", results)
			fmt.Printf("  %-10d %8.1f%% %10.1f%% %12.1f%%\n",
				thr, agg.SuccessRate(), agg.CollisionRate(), agg.PoorLandingRate())
		}
	})
	// Unit: spiral generation (pure decision-layer work).
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.SpiralWaypoints(geom.V3(0, 0, 12), 8, 28)
	}
}

// --------------------------------- §V-C mitigations (future-work ablation)

var mitigationOnce sync.Once

func BenchmarkMitigations_RTKOffboard(b *testing.B) {
	mitigationOnce.Do(func() {
		fmt.Println("\n=== §V-C mitigations — field landing error with RTK / off-board descent ===")
		profile := hil.JetsonNanoMAXN()
		costs := hil.FieldCosts()
		plan := hil.DerivePlan(profile, costs)
		type variant struct {
			name     string
			rtk      bool
			offboard bool
		}
		for _, v := range []variant{
			{"baseline field", false, false},
			{"+ off-board descent", false, true},
			{"+ RTK base station", true, false},
			{"+ both", true, true},
		} {
			var errs []float64
			landed := 0
			for i := 0; i < 8; i++ {
				sc, err := worldgen.Generate([]int{0, 2, 4, 5}[i%4], i%10)
				if err != nil {
					b.Fatal(err)
				}
				if sc.Weather.GPSDegradation < 0.5 {
					sc.Weather.GPSDegradation = 0.5
				}
				if sc.Weather.GustStd < 1.0 {
					sc.Weather.GustStd = 1.0
				}
				sys, err := scenario.BuildSystem(core.V3, sc, int64(i*7))
				if err != nil {
					b.Fatal(err)
				}
				sys.SetReplanInterval(plan.ReplanInterval)
				sys.SetGuardInterval(plan.GuardInterval)
				sys.SetOffboardRelativeDescent(v.offboard)
				cfg := scenario.DefaultRunConfig(int64(i * 7))
				cfg.Timing = plan.Timing
				cfg.ErroneousDepthRate = 0.04
				cfg.RTK = v.rtk
				r := scenario.Run(sc, sys, cfg)
				if r.Landed && !math.IsNaN(r.LandingError) {
					errs = append(errs, r.LandingError)
					landed++
				}
			}
			fmt.Printf("  %-22s mean landing error %.2f m over %d landings\n",
				v.name, mean(errs), landed)
		}
	})
	// Unit: one estimator epoch.
	sc, _ := worldgen.Generate(2, 4)
	sys, _ := scenario.BuildSystem(core.V3, sc, 1)
	epoch := core.SensorEpoch{Dt: 0.05, GPS: geom.V3(0, 0, 12), LidarRange: 12, LidarOK: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Step(epoch)
	}
}

// BenchmarkDispatchOverhead prices the fleet transport: one iteration
// runs the same small campaign twice at equal total engine parallelism —
// directly through campaign.Execute, and through a loopback coordinator
// with one joined worker (leases, heartbeats, gzip uploads, digest
// verification, merge). The reported overhead-% metric is what
// tools/benchgate holds at <= 5%: past that, -serve/-join would tax every
// fleet campaign. Digest equality is asserted every iteration, so the
// benchmark doubles as a correctness smoke.
func BenchmarkDispatchOverhead(b *testing.B) {
	// Big enough that lease sizing amortizes dispatch the way a real
	// campaign does; a handful of runs would be all tail (one lease per
	// run, each paying engine spin-up) and measure the wrong regime.
	spec := campaign.Spec{
		Maps:        campaign.Range(4),
		Scenarios:   []int{0, 5},
		Repeats:     1,
		Generations: []core.Generation{core.V1},
		Timing:      scenario.SILTiming(),
	}
	ctx := context.Background()
	// Warm the shared world cache so neither side pays first-touch world
	// generation inside the timed region.
	if _, err := campaign.Execute(ctx, spec, campaign.Options{Workers: 2, Ordered: true}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var direct, fleet time.Duration
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		rep, err := campaign.Execute(ctx, spec, campaign.Options{Workers: 2, Ordered: true})
		if err != nil {
			b.Fatal(err)
		}
		direct += time.Since(t0)

		// The fleet side pays for everything dispatch adds: coordinator
		// construction, the HTTP server, lease round-trips, uploads, merge.
		t1 := time.Now()
		c, err := coord.NewCoordinator(coord.Config{Spec: spec, LeaseTTL: 30 * time.Second})
		if err != nil {
			b.Fatal(err)
		}
		srv := httptest.NewServer(c.Handler())
		if _, err := coord.Work(ctx, coord.WorkerOptions{
			Addr: srv.URL, Name: "bench", EngineWorkers: 2,
			PollInterval: 5 * time.Millisecond,
		}); err != nil {
			b.Fatal(err)
		}
		fleet += time.Since(t1)
		srv.Close()
		if c.Digest() != rep.Digest() {
			b.Fatalf("fleet digest %s != direct %s", c.Digest(), rep.Digest())
		}
	}
	b.ReportMetric(100*(fleet.Seconds()-direct.Seconds())/direct.Seconds(), "overhead-%")
}

// BenchmarkCellAffinity measures the scheduler-level world-cache hit rate
// of cell-affine lease placement against the random-segment baseline on a
// paper-scale grid (all three generations, so every cell recurs twice) —
// the throughput-snapshot number behind the coordinator's affinity
// policy. Pure scheduling; no missions fly.
func BenchmarkCellAffinity(b *testing.B) {
	spec := campaign.Spec{
		Maps:        campaign.Range(10),
		Scenarios:   benchScenarios,
		Repeats:     2,
		Generations: []core.Generation{core.V1, core.V2, core.V3},
		Timing:      scenario.SILTiming(),
	}
	const workers = 8
	var affine, random coord.AffinityStats
	for i := 0; i < b.N; i++ {
		var err error
		if affine, err = coord.SimulateScheduling(spec, workers, true); err != nil {
			b.Fatal(err)
		}
		if random, err = coord.SimulateScheduling(spec, workers, false); err != nil {
			b.Fatal(err)
		}
	}
	if affine.HitRate() <= random.HitRate() {
		b.Fatalf("affine placement (%.3f) should beat random (%.3f)", affine.HitRate(), random.HitRate())
	}
	b.ReportMetric(100*affine.HitRate(), "affine-hit-%")
	b.ReportMetric(100*random.HitRate(), "random-hit-%")
}
